(* End-to-end property tests across the implementation-scheme space.

   For random schemes drawn from Section III's category, the simulated
   implementation's measured end-to-end delay must be bounded by

   - the analytic relaxed bound of Lemmas 1-2, and
   - the model-checked bound of the transformed PSM (Theorem 1's
     conclusion, observed on the implementation).

   These properties tie together all five subsystems (scheme, transform,
   mc, analysis, sim) through two independent computations of the same
   quantity, so they are the repository's strongest integration check. *)

open Ta

let loc = Model.location
let edge = Model.edge

(* The lamp PIM: respond to m_Press with c_On within [10, 50].  Aperiodic
   invocation forbids timed waits in the software, so those schemes use
   an immediate-response controller (same 50 ms deadline, no lower
   bound). *)
let lamp_net ~immediate =
  let answer =
    if immediate then
      edge ~sync:(Model.Send "c_On") "Switching" "On"
    else
      edge ~guard:[ Clockcons.ge "x" 10 ] ~sync:(Model.Send "c_On")
        "Switching" "On"
  in
  let controller =
    Model.automaton ~name:"Controller" ~initial:"Off"
      [ loc "Off"; loc ~inv:[ Clockcons.le "x" 50 ] "Switching"; loc "On" ]
      [ edge ~sync:(Model.Recv "m_Press") ~resets:[ "x" ] "Off" "Switching";
        answer ]
  in
  let user =
    Model.automaton ~name:"User" ~initial:"Idle"
      [ loc "Idle"; loc "Waiting"; loc "Happy" ]
      [ edge ~sync:(Model.Send "m_Press") "Idle" "Waiting";
        edge ~sync:(Model.Recv "c_On") "Waiting" "Happy" ]
  in
  Model.network ~name:"lamp" ~clocks:[ "x" ] ~vars:[]
    ~channels:[ ("m_Press", Model.Broadcast); ("c_On", Model.Broadcast) ]
    [ controller; user ]

let lamp_pim scheme =
  let immediate =
    match scheme.Scheme.is_invocation with
    | Scheme.Aperiodic _ -> true
    | Scheme.Periodic _ -> false
  in
  Transform.Pim.make (lamp_net ~immediate) ~software:"Controller"
    ~environment:"User"

let pim_internal_bound = 50

(* --- random schemes ------------------------------------------------------ *)

let gen_scheme =
  let open QCheck.Gen in
  let* period = int_range 10 50 in
  let* invocation =
    oneof
      [ return (Scheme.Periodic period);
        map (fun gap -> Scheme.Aperiodic gap) (int_range 0 5) ]
  in
  let* wcet_max = int_range 2 (max 2 (period / 2)) in
  let* in_dmax = int_range 1 20 in
  let* out_dmax = int_range 1 20 in
  let* input =
    oneof
      [ return (Scheme.interrupt_input (Scheme.delay 1 in_dmax));
        (let* interval = int_range 5 30 in
         return (Scheme.polling_input ~interval (Scheme.delay 1 in_dmax))) ]
  in
  let* comm =
    oneof
      [ (let* size = int_range 1 4 in
         let* policy = oneofl [ Scheme.Read_one; Scheme.Read_all ] in
         return (Scheme.Buffer (size, policy)));
        return Scheme.Shared_variable ]
  in
  return
    { Scheme.is_name = "random";
      is_inputs = [ ("m_Press", input) ];
      is_outputs = [ ("c_On", Scheme.pulse_output (Scheme.delay 1 out_dmax)) ];
      is_input_comm = comm;
      is_output_comm = comm;
      is_invocation = invocation;
      is_exec = { Scheme.wcet_min = 1; wcet_max } }

let print_scheme = Fmt.to_to_string Scheme.pp

let arb_scheme = QCheck.make ~print:print_scheme gen_scheme

(* Typical-case distributions spanning the whole WCET windows: the
   simulator may draw the worst case, so the bounds really are exercised
   at their edges. *)
let typical_of scheme =
  let window (d : Scheme.delay_bounds) =
    (float_of_int d.Scheme.delay_min, float_of_int d.Scheme.delay_max)
  in
  { Sim.Engine.typ_input_proc =
      (fun m -> window (Scheme.input_spec scheme m).Scheme.in_delay);
    typ_output_proc =
      (fun c -> window (Scheme.output_spec scheme c).Scheme.out_delay);
    typ_exec =
      ( float_of_int scheme.Scheme.is_exec.Scheme.wcet_min,
        float_of_int scheme.Scheme.is_exec.Scheme.wcet_max ) }

let simulate_once ~seed scheme =
  let analytic =
    Analysis.Bounds.relaxed_mc_delay scheme ~input:"m_Press" ~output:"c_On"
      ~internal:pim_internal_bound
  in
  let rng = Sim.Rng.create seed in
  let press = Sim.Rng.float_range rng 0.0 100.0 in
  let config =
    { Sim.Engine.cfg_pim = lamp_pim scheme;
      cfg_scheme = scheme;
      cfg_typical = typical_of scheme;
      cfg_stimuli = [ (press, "m_Press") ];
      cfg_horizon = press +. (3.0 *. float_of_int analytic) +. 200.0 }
  in
  let log = Sim.Engine.run ~seed config in
  match Sim.Measure.samples log ~trigger:"m_Press" ~response:"c_On" with
  | [ sample ] -> (analytic, Sim.Measure.mc_delay sample)
  | samples ->
    QCheck.Test.fail_reportf "expected one sample, got %d"
      (List.length samples)

let prop_measured_within_analytic =
  QCheck.Test.make
    ~name:"simulated delay is within the Lemma-1/2 bound (random schemes)"
    ~count:150
    (QCheck.pair arb_scheme QCheck.small_int)
    (fun (scheme, seed) ->
      QCheck.assume (Scheme.check scheme = []);
      match simulate_once ~seed scheme with
      | analytic, Some delay ->
        if delay <= float_of_int analytic then true
        else
          QCheck.Test.fail_reportf "measured %.1f > analytic %d" delay
            analytic
      | _, None ->
        (* the single press can be lost only through a missed interrupt
           or a full slot, both possible for tiny buffers under re-entry;
           with a single stimulus neither can happen *)
        QCheck.Test.fail_reportf "the single press was lost")

let prop_measured_within_verified =
  QCheck.Test.make
    ~name:"simulated delay is within the model-checked PSM bound"
    ~count:40
    (QCheck.pair arb_scheme QCheck.small_int)
    (fun (scheme, seed) ->
      QCheck.assume (Scheme.check scheme = []);
      let analytic, measured = simulate_once ~seed scheme in
      match measured with
      | None -> QCheck.Test.fail_reportf "the single press was lost"
      | Some delay ->
        let psm = Transform.psm_of_pim (lamp_pim scheme) scheme in
        let verified =
          (Analysis.Queries.max_delay psm.Transform.psm_net
             ~trigger:"m_Press" ~response:"c_On" ~ceiling:(2 * analytic))
            .Analysis.Queries.dr_sup
        in
        (match verified with
         | Mc.Explorer.Sup (bound, _) ->
           if delay <= float_of_int bound then true
           else
             QCheck.Test.fail_reportf "measured %.1f > verified %d" delay
               bound
         | Mc.Explorer.Sup_exceeds _ ->
           (* sound but above the ceiling: nothing to contradict *)
           true
         | Mc.Explorer.Sup_unreached ->
           QCheck.Test.fail_reportf
             "the press is measurable in the simulator but the monitor \
              never triggered in the PSM"))

(* The verified bound can never exceed the analytic one by construction
   of the analytic worst case... it can, however, be *smaller* (the model
   checker sees correlations).  Check the sound direction only: analytic
   >= verified. *)
let prop_analytic_dominates_verified =
  QCheck.Test.make
    ~name:"Lemma-1/2 bound dominates the model-checked bound" ~count:40
    arb_scheme
    (fun scheme ->
      QCheck.assume (Scheme.check scheme = []);
      let analytic =
        Analysis.Bounds.relaxed_mc_delay scheme ~input:"m_Press"
          ~output:"c_On" ~internal:pim_internal_bound
      in
      let psm = Transform.psm_of_pim (lamp_pim scheme) scheme in
      let verified =
        (Analysis.Queries.max_delay psm.Transform.psm_net ~trigger:"m_Press"
           ~response:"c_On" ~ceiling:(2 * analytic))
          .Analysis.Queries.dr_sup
      in
      match verified with
      | Mc.Explorer.Sup (bound, _) ->
        if bound <= analytic then true
        else
          QCheck.Test.fail_reportf "verified %d > analytic %d" bound analytic
      | Mc.Explorer.Sup_unreached ->
        QCheck.Test.fail_reportf "press unreachable in the PSM"
      | Mc.Explorer.Sup_exceeds _ ->
        QCheck.Test.fail_reportf
          "verified bound above 2x the analytic bound")

let suite =
  [ QCheck_alcotest.to_alcotest prop_measured_within_analytic;
    QCheck_alcotest.to_alcotest prop_measured_within_verified;
    QCheck_alcotest.to_alcotest prop_analytic_dominates_verified ]
