(* Tests for timelock detection, timed witness traces, and the
   implementability (guard-window) checks. *)

open Ta

let loc = Model.location
let edge = Model.edge

(* --- find_timelock ------------------------------------------------------ *)

let test_timelock_found () =
  (* Invariant x <= 2 but the only exit needs x >= 4: time is blocked at
     x = 2 with no moves. *)
  let a =
    Model.automaton ~name:"Stuck" ~initial:"L"
      [ loc ~inv:[ Clockcons.le "x" 2 ] "L"; loc "Out" ]
      [ edge ~guard:[ Clockcons.ge "x" 4 ] "L" "Out" ]
  in
  let net =
    Model.network ~name:"tl" ~clocks:[ "x" ] ~vars:[] ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make net in
  Alcotest.(check bool) "timelock detected" true
    ((Mc.Explorer.find_timelock t).Mc.Explorer.r_trace <> None)

let test_quiescent_not_a_timelock () =
  (* A terminal location with no invariant lets time diverge: fine. *)
  let a =
    Model.automaton ~name:"Done" ~initial:"L"
      [ loc "L"; loc "End" ]
      [ edge "L" "End" ]
  in
  let net =
    Model.network ~name:"quiet" ~clocks:[ "x" ] ~vars:[] ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make net in
  Alcotest.(check bool) "no timelock" true
    ((Mc.Explorer.find_timelock t).Mc.Explorer.r_trace = None)

let test_urgent_deadlock_is_timelock () =
  let a =
    Model.automaton ~name:"U" ~initial:"L"
      [ loc ~kind:Model.Urgent "L"; loc "Out" ]
      [ edge ~pred:Expr.False "L" "Out" ]
  in
  let net =
    Model.network ~name:"urgent-tl" ~clocks:[] ~vars:[] ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make net in
  Alcotest.(check bool) "urgent deadlock is a timelock" true
    ((Mc.Explorer.find_timelock t).Mc.Explorer.r_trace <> None)

(* --- the PSM implementability gap ---------------------------------------- *)

let slow_period_params =
  (* period 600 with the GPCA preparation window [250, 500]: no compute
     stage ever intersects the window; the PSM timelocks. *)
  { Gpca.Params.default with Gpca.Params.period = 600 }

let test_psm_timelock_on_slow_period () =
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only slow_period_params in
  (match Analysis.Implementability.find_timelock psm with
   | Some trace ->
     Alcotest.(check bool) "witness non-empty" true (trace <> [])
   | None -> Alcotest.fail "expected a timelock with period 600")

(* At the default parameters the guard windows are wide enough for eager
   code (no window warnings), but the model still contains postponement
   timelocks: MIO may decline to fire through every compute window and
   then hit its deadline between windows.  find_timelock reports those;
   the window check tells them apart from real defects. *)
let test_psm_postponement_timelock_at_default () =
  (* A shortened infusion keeps the subsumption-free search small; the
     timing structure (windows wide enough for eager code) is unchanged. *)
  let p =
    { Gpca.Params.default with
      Gpca.Params.infusion_hold = 300;
      infusion_slack = 200 }
  in
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only p in
  Alcotest.(check bool) "postponement timelock exists in the model" true
    (Analysis.Implementability.find_timelock psm <> None);
  Alcotest.(check int) "yet no window warnings (eager code is fine)" 0
    (List.length (Analysis.Implementability.check_window_widths psm))

let test_window_warning_flags_slow_period () =
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only slow_period_params in
  let warnings = Analysis.Implementability.check_window_widths psm in
  Alcotest.(check bool) "prep window flagged" true
    (List.exists
       (fun (w : Analysis.Implementability.window_warning) ->
         w.Analysis.Implementability.ww_clock = Gpca.Model.software_clock
         && w.Analysis.Implementability.ww_window = 250)
       warnings)

let test_window_warning_silent_at_default () =
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only Gpca.Params.default in
  Alcotest.(check int) "no warnings" 0
    (List.length (Analysis.Implementability.check_window_widths psm))

(* --- timed traces --------------------------------------------------------- *)

let test_timed_trace_simple () =
  (* A -> B at x in [3, 5]; then B -> C at y == 2 after a reset. *)
  let a =
    Model.automaton ~name:"P" ~initial:"A"
      [ loc ~inv:[ Clockcons.le "x" 5 ] "A";
        loc ~inv:[ Clockcons.le "y" 2 ] "B";
        loc "C" ]
      [ edge ~guard:[ Clockcons.ge "x" 3 ] ~resets:[ "y" ] "A" "B";
        edge ~guard:[ Clockcons.eq_ "y" 2 ] "B" "C" ]
  in
  let net =
    Model.network ~name:"tt" ~clocks:[ "x"; "y" ] ~vars:[] ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make net in
  match Mc.Explorer.timed_trace t (Mc.Explorer.at t ~aut:"P" ~loc:"C") with
  | None -> Alcotest.fail "C should be reachable"
  | Some [ step1; step2 ] ->
    Alcotest.(check (pair int bool)) "step 1 earliest" (3, false)
      step1.Mc.Explorer.td_earliest;
    Alcotest.(check (option (pair int bool))) "step 1 latest" (Some (5, false))
      step1.Mc.Explorer.td_latest;
    (* step 2 fires exactly 2 after step 1: absolute time in [5, 7] *)
    Alcotest.(check (pair int bool)) "step 2 earliest" (5, false)
      step2.Mc.Explorer.td_earliest;
    Alcotest.(check (option (pair int bool))) "step 2 latest" (Some (7, false))
      step2.Mc.Explorer.td_latest
  | Some steps -> Alcotest.failf "expected 2 steps, got %d" (List.length steps)

let test_timed_trace_unreachable () =
  let a =
    Model.automaton ~name:"P" ~initial:"A" [ loc "A"; loc "B" ] []
  in
  let net =
    Model.network ~name:"un" ~clocks:[] ~vars:[] ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make net in
  Alcotest.(check bool) "no trace" true
    (Mc.Explorer.timed_trace t (Mc.Explorer.at t ~aut:"P" ~loc:"B") = None)

let test_timed_trace_gpca () =
  (* The infusion start happens no earlier than prep_min and, along the
     earliest witness, within the PIM bound. *)
  let net = Gpca.Model.network ~variant:Gpca.Model.Bolus_only Gpca.Params.default in
  let t = Mc.Explorer.make net in
  match
    Mc.Explorer.timed_trace t (Mc.Explorer.at t ~aut:"Pump" ~loc:"Infusing")
  with
  | None -> Alcotest.fail "Infusing unreachable"
  | Some steps ->
    let last = List.nth steps (List.length steps - 1) in
    let lo, _ = last.Mc.Explorer.td_earliest in
    Alcotest.(check bool) "infusion no earlier than prep_min" true (lo >= 250)

(* Replayed timed traces must be consistent: earliest times are
   monotonically non-decreasing along the chain. *)
let prop_timed_trace_monotonic =
  QCheck.Test.make ~name:"timed traces are time-monotonic" ~count:100
    Gen.arb_network
    (fun net ->
      let t = Mc.Explorer.make net in
      (* target: any location vector other than the initial one *)
      let initial_locs =
        Array.of_list
          (List.map
             (fun (a : Ta.Model.automaton) -> a.Ta.Model.aut_initial)
             net.Ta.Model.net_automata)
      in
      let comp = Mc.Explorer.compiled t in
      ignore comp;
      let moved st =
        let names =
          Array.map
            (fun (a : Ta.Compiled.cautomaton) -> a.Ta.Compiled.ca_name)
            (Mc.Explorer.compiled t).Ta.Compiled.c_automata
        in
        ignore names;
        Array.exists (fun x -> x)
          (Array.mapi
             (fun i li ->
               let a = (Mc.Explorer.compiled t).Ta.Compiled.c_automata.(i) in
               a.Ta.Compiled.ca_locs.(li).Ta.Compiled.cl_name
               <> initial_locs.(i))
             st.Mc.Explorer.st_locs)
      in
      match Mc.Explorer.timed_trace t moved with
      | None -> true  (* nothing moves: vacuously fine *)
      | Some steps ->
        let rec monotonic last = function
          | [] -> true
          | (s : Mc.Explorer.timed_step) :: rest ->
            let lo, _ = s.Mc.Explorer.td_earliest in
            lo >= last && monotonic lo rest
        in
        monotonic 0 steps)

let suite =
  [ Alcotest.test_case "timelock found" `Quick test_timelock_found;
    Alcotest.test_case "quiescence is not a timelock" `Quick
      test_quiescent_not_a_timelock;
    Alcotest.test_case "urgent deadlock is a timelock" `Quick
      test_urgent_deadlock_is_timelock;
    Alcotest.test_case "PSM timelocks when the period is too slow" `Slow
      test_psm_timelock_on_slow_period;
    Alcotest.test_case "postponement timelock at default parameters" `Slow
      test_psm_postponement_timelock_at_default;
    Alcotest.test_case "window warning on slow period" `Quick
      test_window_warning_flags_slow_period;
    Alcotest.test_case "no window warning at defaults" `Quick
      test_window_warning_silent_at_default;
    Alcotest.test_case "timed trace intervals" `Quick test_timed_trace_simple;
    Alcotest.test_case "timed trace of unreachable target" `Quick
      test_timed_trace_unreachable;
    Alcotest.test_case "timed trace on GPCA" `Quick test_timed_trace_gpca;
    QCheck_alcotest.to_alcotest prop_timed_trace_monotonic ]
