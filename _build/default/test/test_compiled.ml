(* Tests for network compilation: index resolution, update bounds, and
   the clock-activity analysis feeding the explorer's reduction. *)

open Ta

let loc = Model.location
let edge = Model.edge

let sample_net () =
  (* One automaton where clock y is only read in one location. *)
  let a =
    Model.automaton ~name:"A" ~initial:"Idle"
      [ loc "Idle";
        loc ~inv:[ Clockcons.le "y" 7 ] "Busy";
        loc "Done" ]
      [ edge ~resets:[ "y" ] "Idle" "Busy";
        edge ~guard:[ Clockcons.ge "y" 3 ] "Busy" "Done";
        edge "Done" "Idle" ]
  in
  Model.network ~name:"activity" ~clocks:[ "y" ]
    ~vars:[ ("v", Model.int_var ~min:0 ~max:2 1) ]
    ~channels:[] [ a ]

let test_indices () =
  let c = Compiled.compile (sample_net ()) in
  Alcotest.(check int) "clock index" 1 (Compiled.clock_index c "y");
  Alcotest.(check int) "var index" 0 (Compiled.var_index c "v");
  let ai, li = Compiled.loc_index c ~aut:"A" "Busy" in
  Alcotest.(check (pair int int)) "loc index" (0, 1) (ai, li);
  Alcotest.(check int) "nclocks" 1 c.Compiled.c_nclocks;
  Alcotest.(check int) "var init" 1 c.Compiled.c_var_init.(0)

let test_max_consts () =
  let c = Compiled.compile (sample_net ()) in
  Alcotest.(check int) "k(y) from guard+invariant" 7 c.Compiled.c_max_consts.(1)

let test_clock_ceilings () =
  let c =
    Compiled.compile ~extra_clocks:[ "w" ] ~clock_ceilings:[ ("w", 99) ]
      (sample_net ())
  in
  Alcotest.(check int) "extra clock indexed" 2 (Compiled.clock_index c "w");
  Alcotest.(check int) "ceiling recorded" 99 c.Compiled.c_max_consts.(2)

let test_activity_analysis () =
  let c = Compiled.compile (sample_net ()) in
  let free_at name =
    let _, li = Compiled.loc_index c ~aut:"A" name in
    c.Compiled.c_automata.(0).Compiled.ca_locs.(li).Compiled.cl_free
  in
  (* y is dead in Idle (reset before any use) and in Done (no use until
     the Idle->Busy reset), active in Busy. *)
  Alcotest.(check (list int)) "dead in Idle" [ 1 ] (free_at "Idle");
  Alcotest.(check (list int)) "dead in Done" [ 1 ] (free_at "Done");
  Alcotest.(check (list int)) "active in Busy" [] (free_at "Busy")

let test_shared_clock_not_freed () =
  (* A clock read by two automata is owned by neither, hence never freed. *)
  let a =
    Model.automaton ~name:"A" ~initial:"L"
      [ loc "L" ]
      [ edge ~guard:[ Clockcons.ge "s" 1 ] ~resets:[ "s" ] "L" "L" ]
  in
  let b =
    Model.automaton ~name:"B" ~initial:"M"
      [ loc "M" ]
      [ edge ~guard:[ Clockcons.le "s" 9 ] "M" "M" ]
  in
  let net =
    Model.network ~name:"shared" ~clocks:[ "s" ] ~vars:[] ~channels:[] [ a; b ]
  in
  let c = Compiled.compile net in
  Array.iter
    (fun (a : Compiled.cautomaton) ->
      Array.iter
        (fun l -> Alcotest.(check (list int)) "never freed" [] l.Compiled.cl_free)
        a.Compiled.ca_locs)
    c.Compiled.c_automata

let test_update_bounds_checked () =
  let a =
    Model.automaton ~name:"A" ~initial:"L"
      [ loc "L" ]
      [ edge ~updates:[ ("v", Expr.int 5) ] "L" "L" ]
  in
  let net =
    Model.network ~name:"bounds" ~clocks:[]
      ~vars:[ ("v", Model.int_var ~min:0 ~max:2 0) ]
      ~channels:[] [ a ]
  in
  let c = Compiled.compile net in
  let ce = List.hd c.Compiled.c_automata.(0).Compiled.ca_out.(0) in
  (match Compiled.apply_updates c [| 0 |] ce.Compiled.ce_updates with
   | exception Compiled.Compile_error _ -> ()
   | _ -> Alcotest.fail "out-of-range assignment accepted")

let test_updates_sequential () =
  let a =
    Model.automaton ~name:"A" ~initial:"L"
      [ loc "L" ]
      [ edge
          ~updates:[ ("u", Expr.int 1); ("v", Expr.(var "u" + int 1)) ]
          "L" "L" ]
  in
  let net =
    Model.network ~name:"seq" ~clocks:[]
      ~vars:[ ("u", Model.int_var 0); ("v", Model.int_var 0) ]
      ~channels:[] [ a ]
  in
  let c = Compiled.compile net in
  let ce = List.hd c.Compiled.c_automata.(0).Compiled.ca_out.(0) in
  let result = Compiled.apply_updates c [| 0; 0 |] ce.Compiled.ce_updates in
  (* v reads the *new* u, UPPAAL-style *)
  Alcotest.(check (pair int int)) "sequential" (1, 2) (result.(0), result.(1))

let test_compile_rejects_invalid () =
  let bad =
    Model.network ~name:"bad" ~clocks:[ "x"; "x" ] ~vars:[] ~channels:[] []
  in
  (match Compiled.compile bad with
   | exception Compiled.Compile_error _ -> ()
   | _ -> Alcotest.fail "invalid network compiled")

let test_describe_edge () =
  let c = Compiled.compile (sample_net ()) in
  let ce = List.hd c.Compiled.c_automata.(0).Compiled.ca_out.(0) in
  Alcotest.(check string) "description" "A: Idle -> Busy (tau)"
    (Compiled.describe_edge c ce)

let suite =
  [ Alcotest.test_case "index resolution" `Quick test_indices;
    Alcotest.test_case "max constants" `Quick test_max_consts;
    Alcotest.test_case "extra clocks and ceilings" `Quick test_clock_ceilings;
    Alcotest.test_case "activity analysis" `Quick test_activity_analysis;
    Alcotest.test_case "shared clocks never freed" `Quick
      test_shared_clock_not_freed;
    Alcotest.test_case "update bounds checked" `Quick
      test_update_bounds_checked;
    Alcotest.test_case "updates are sequential" `Quick test_updates_sequential;
    Alcotest.test_case "compile rejects invalid nets" `Quick
      test_compile_rejects_invalid;
    Alcotest.test_case "edge description" `Quick test_describe_edge ]
