(* Unit and property tests for the expression language. *)

open Ta

let env_of assoc x =
  match List.assoc_opt x assoc with
  | Some v -> v
  | None -> Alcotest.failf "unbound variable %s" x

let test_eval_arith () =
  let e = Expr.(var "a" + (int 3 * var "b") - int 1) in
  Alcotest.(check int) "a + 3b - 1" 12
    (Expr.eval_expr (env_of [ ("a", 4); ("b", 3) ]) e)

let test_eval_neg () =
  Alcotest.(check int) "neg" (-7)
    (Expr.eval_expr (fun _ -> 0) (Expr.Neg (Expr.Int 7)))

let test_eval_pred () =
  let p = Expr.(conj [ ge (var "x") (int 2); lt (var "x") (int 5) ]) in
  let check value expected =
    Alcotest.(check bool)
      (Fmt.str "2 <= %d < 5" value)
      expected
      (Expr.eval_pred (env_of [ ("x", value) ]) p)
  in
  check 1 false;
  check 2 true;
  check 4 true;
  check 5 false

let test_pred_connectives () =
  let env = env_of [ ("x", 3) ] in
  Alcotest.(check bool) "or" true
    (Expr.eval_pred env Expr.(Or (var_eq "x" 9, var_eq "x" 3)));
  Alcotest.(check bool) "not" true
    (Expr.eval_pred env Expr.(Not (var_eq "x" 9)));
  Alcotest.(check bool) "false" false (Expr.eval_pred env Expr.False);
  Alcotest.(check bool) "ne" true
    (Expr.eval_pred env Expr.(ne (var "x") (int 9)))

let test_vars_dedup () =
  let e = Expr.(var "a" + var "b" + var "a") in
  Alcotest.(check (list string)) "vars" [ "a"; "b" ] (Expr.vars_of_expr e);
  let p = Expr.(And (var_eq "a" 1, ge (var "c") (var "a"))) in
  Alcotest.(check (list string)) "pred vars" [ "a"; "c" ] (Expr.vars_of_pred p)

let test_conj_identity () =
  Alcotest.(check bool) "empty conj" true
    (Expr.eval_pred (fun _ -> 0) (Expr.conj []));
  (match Expr.conj [ Expr.True; Expr.var_eq "x" 1 ] with
   | Expr.Cmp _ -> ()
   | _ -> Alcotest.fail "True should be absorbed")

(* Random expression generator over a fixed set of three variables. *)
let gen_expr =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
    if n <= 0 then
      oneof
        [ map Expr.int (int_range (-20) 20);
          map Expr.var (oneofl [ "a"; "b"; "c" ]) ]
    else
      let sub = self (n / 2) in
      oneof
        [ map2 (fun a b -> Expr.Add (a, b)) sub sub;
          map2 (fun a b -> Expr.Sub (a, b)) sub sub;
          map (fun a -> Expr.Neg a) sub;
          map Expr.int (int_range (-20) 20) ])

let arb_expr = QCheck.make ~print:(Fmt.to_to_string Expr.pp_expr) gen_expr

(* Compiling and evaluating must agree with the direct evaluator. *)
let prop_compile_agrees =
  QCheck.Test.make ~name:"compile_expr agrees with eval_expr" ~count:500
    (QCheck.pair arb_expr (QCheck.triple QCheck.small_int QCheck.small_int QCheck.small_int))
    (fun (e, (a, b, c)) ->
      let index = function
        | "a" -> 0
        | "b" -> 1
        | "c" -> 2
        | v -> QCheck.Test.fail_reportf "unexpected var %s" v
      in
      let vals = [| a; b; c |] in
      let env = function
        | "a" -> a
        | "b" -> b
        | "c" -> c
        | v -> QCheck.Test.fail_reportf "unexpected var %s" v
      in
      Expr.compile_expr ~index e vals = Expr.eval_expr env e)

(* Negation of predicates flips evaluation. *)
let prop_not_involution =
  QCheck.Test.make ~name:"Not flips eval_pred" ~count:200
    (QCheck.pair arb_expr QCheck.small_int)
    (fun (e, a) ->
      let env _ = a in
      let p = Expr.le e (Expr.int 0) in
      Expr.eval_pred env (Expr.Not p) = not (Expr.eval_pred env p))

let suite =
  [ Alcotest.test_case "eval arithmetic" `Quick test_eval_arith;
    Alcotest.test_case "eval negation" `Quick test_eval_neg;
    Alcotest.test_case "eval bounded predicate" `Quick test_eval_pred;
    Alcotest.test_case "eval connectives" `Quick test_pred_connectives;
    Alcotest.test_case "free variables dedup" `Quick test_vars_dedup;
    Alcotest.test_case "conj identity" `Quick test_conj_identity;
    QCheck_alcotest.to_alcotest prop_compile_agrees;
    QCheck_alcotest.to_alcotest prop_not_involution ]
