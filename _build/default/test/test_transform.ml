(* Tests for the PIM->PSM transformation: modularity (the software and
   environment automata are preserved), the generated interface automata
   for each mechanism of Section III, and behavioral sanity of the
   transformed network. *)

open Ta

let loc = Model.location
let edge = Model.edge

(* A small lamp controller PIM (same shape as the quickstart example). *)
let controller =
  Model.automaton ~name:"Controller" ~initial:"Off"
    [ loc "Off"; loc ~inv:[ Clockcons.le "x" 50 ] "Switching"; loc "On" ]
    [ edge ~sync:(Model.Recv "m_Press") ~resets:[ "x" ] "Off" "Switching";
      edge ~guard:[ Clockcons.ge "x" 10 ] ~sync:(Model.Send "c_On")
        "Switching" "On" ]

let user =
  Model.automaton ~name:"User" ~initial:"Idle"
    [ loc "Idle"; loc "Waiting"; loc "Happy" ]
    [ edge ~sync:(Model.Send "m_Press") "Idle" "Waiting";
      edge ~sync:(Model.Recv "c_On") "Waiting" "Happy" ]

let pim_net =
  Model.network ~name:"lamp" ~clocks:[ "x" ] ~vars:[]
    ~channels:[ ("m_Press", Model.Broadcast); ("c_On", Model.Broadcast) ]
    [ controller; user ]

let pim () = Transform.Pim.make pim_net ~software:"Controller" ~environment:"User"

let scheme ?(input = Scheme.interrupt_input (Scheme.delay 1 3))
    ?(input_comm = Scheme.Buffer (2, Scheme.Read_all))
    ?(invocation = Scheme.Periodic 20) () =
  { Scheme.is_name = "test";
    is_inputs = [ ("m_Press", input) ];
    is_outputs = [ ("c_On", Scheme.pulse_output (Scheme.delay 2 5)) ];
    is_input_comm = input_comm;
    is_output_comm = Scheme.Buffer (2, Scheme.Read_all);
    is_invocation = invocation;
    is_exec = { Scheme.wcet_min = 1; wcet_max = 5 } }

(* --- Pim.make ---------------------------------------------------------- *)

let test_pim_inference () =
  let p = pim () in
  Alcotest.(check (list string)) "inputs" [ "m_Press" ] p.Transform.Pim.pim_inputs;
  Alcotest.(check (list string)) "outputs" [ "c_On" ] p.Transform.Pim.pim_outputs

let test_pim_rejects_missing_automaton () =
  (match Transform.Pim.make pim_net ~software:"Nobody" ~environment:"User" with
   | exception Transform.Pim.Ill_formed _ -> ()
   | _ -> Alcotest.fail "missing software accepted")

let test_pim_rejects_binary_boundary () =
  let net =
    { pim_net with
      Model.net_channels =
        [ ("m_Press", Model.Binary); ("c_On", Model.Broadcast) ] }
  in
  (match Transform.Pim.make net ~software:"Controller" ~environment:"User" with
   | exception Transform.Pim.Ill_formed _ -> ()
   | _ -> Alcotest.fail "binary m-channel accepted")

let test_pim_rejects_clock_guarded_input () =
  let guarded =
    { controller with
      Model.aut_edges =
        [ edge ~guard:[ Clockcons.ge "x" 1 ] ~sync:(Model.Recv "m_Press")
            ~resets:[ "x" ] "Off" "Switching";
          edge ~guard:[ Clockcons.ge "x" 10 ] ~sync:(Model.Send "c_On")
            "Switching" "On" ] }
  in
  let net = Model.replace_automaton pim_net "Controller" guarded in
  (match Transform.Pim.make net ~software:"Controller" ~environment:"User" with
   | exception Transform.Pim.Ill_formed _ -> ()
   | _ -> Alcotest.fail "clock-guarded input reception accepted")

(* --- modularity --------------------------------------------------------- *)

let test_mio_preserves_structure () =
  let p = pim () in
  let mio = Transform.mio_of_software p in
  Alcotest.(check int) "locations preserved"
    (List.length controller.Model.aut_locations)
    (List.length mio.Model.aut_locations);
  Alcotest.(check int) "edges preserved"
    (List.length controller.Model.aut_edges)
    (List.length mio.Model.aut_edges);
  Alcotest.(check (list string)) "receives renamed m->i" [ "i_Press" ]
    (Model.receives_of mio);
  Alcotest.(check (list string)) "sends renamed c->o" [ "o_On" ]
    (Model.sends_of mio);
  (* every edge gated on the compute window *)
  List.iter
    (fun e ->
      let mentions_exe =
        List.mem Transform.Names.exe_running (Expr.vars_of_pred e.Model.edge_pred)
      in
      Alcotest.(check bool) "gated" true mentions_exe)
    mio.Model.aut_edges

let test_env_unchanged () =
  let psm = Transform.psm_of_pim (pim ()) (scheme ()) in
  let env = Model.find_automaton psm.Transform.psm_net "User" in
  Alcotest.(check bool) "ENVMC is ENV, verbatim" true (env = user)

let test_psm_validates () =
  let psm = Transform.psm_of_pim (pim ()) (scheme ()) in
  Alcotest.(check (list string)) "valid" [] (Model.validate psm.Transform.psm_net)

let automaton_names psm =
  List.map
    (fun a -> a.Model.aut_name)
    psm.Transform.psm_net.Model.net_automata

let test_psm_composition () =
  let psm = Transform.psm_of_pim (pim ()) (scheme ()) in
  let names = automaton_names psm in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "Controller_IO"; "User"; "IFMI_Press"; "IFOC_On"; "EXEIO" ]

(* --- mechanism variants -------------------------------------------------- *)

(* Aperiodic invocation requires immediate-response software (no timed
   waits); these tests use a controller that answers in the invocation
   that delivers the input. *)
let immediate_pim () =
  let controller =
    Model.automaton ~name:"Controller" ~initial:"Off"
      [ loc "Off"; loc ~inv:[ Clockcons.le "x" 50 ] "Switching"; loc "On" ]
      [ edge ~sync:(Model.Recv "m_Press") ~resets:[ "x" ] "Off" "Switching";
        edge ~sync:(Model.Send "c_On") "Switching" "On" ]
  in
  let net = Model.replace_automaton pim_net "Controller" controller in
  Transform.Pim.make net ~software:"Controller" ~environment:"User"

let edges_of psm name =
  (Model.find_automaton psm.Transform.psm_net name).Model.aut_edges

let test_interrupt_ifmi_shape () =
  let psm = Transform.psm_of_pim (pim ()) (scheme ()) in
  let ifmi = Model.find_automaton psm.Transform.psm_net "IFMI_Press" in
  Alcotest.(check int) "two locations" 2 (List.length ifmi.Model.aut_locations);
  (* miss flag instrumentation on re-trigger *)
  let has_miss_loop =
    List.exists
      (fun e ->
        e.Model.edge_src = "Processing"
        && e.Model.edge_dst = "Processing"
        && e.Model.edge_sync = Model.Recv "m_Press")
      ifmi.Model.aut_edges
  in
  Alcotest.(check bool) "missed-pulse loop" true has_miss_loop;
  Alcotest.(check (list (pair string string))) "miss flags"
    [ ("m_Press", "imiss_Press") ]
    psm.Transform.psm_miss_flags

let test_polling_adds_latch () =
  let input =
    Scheme.polling_input ~interval:7 (Scheme.delay 1 3)
  in
  let psm = Transform.psm_of_pim (pim ()) (scheme ~input ()) in
  let names = automaton_names psm in
  Alcotest.(check bool) "latch present" true (List.mem "Latch_Press" names);
  Alcotest.(check bool) "no miss flag for polling" true
    (psm.Transform.psm_miss_flags = []);
  (* the polling IFMI carries the poll clock in its Idle invariant *)
  let ifmi = Model.find_automaton psm.Transform.psm_net "IFMI_Press" in
  let idle = Model.find_location ifmi "Idle" in
  Alcotest.(check bool) "poll invariant" true
    (List.mem "p_Press" (Clockcons.clocks idle.Model.loc_inv))

let test_sustained_latch_autodrops () =
  let input =
    Scheme.polling_input ~signal:(Scheme.Sustained 30) ~interval:7
      (Scheme.delay 1 3)
  in
  let psm = Transform.psm_of_pim (pim ()) (scheme ~input ()) in
  let latch = Model.find_automaton psm.Transform.psm_net "Latch_Press" in
  Alcotest.(check int) "two-state latch" 2
    (List.length latch.Model.aut_locations)

let test_shared_variable_flags () =
  let psm =
    Transform.psm_of_pim (pim ()) (scheme ~input_comm:Scheme.Shared_variable ())
  in
  Alcotest.(check (list (pair string string))) "overwrite-loss flag"
    [ ("m_Press", "ilost_Press") ]
    psm.Transform.psm_input_loss_flags

let test_buffer_flags () =
  let psm = Transform.psm_of_pim (pim ()) (scheme ()) in
  Alcotest.(check (list (pair string string))) "overflow flag"
    [ ("m_Press", "iovf_Press") ]
    psm.Transform.psm_input_loss_flags;
  Alcotest.(check (list (pair string string))) "output overflow flag"
    [ ("c_On", "oovf_On") ]
    psm.Transform.psm_output_loss_flags

let test_periodic_exeio_stages () =
  let psm = Transform.psm_of_pim (pim ()) (scheme ()) in
  let exeio = Model.find_automaton psm.Transform.psm_net "EXEIO" in
  let names = List.map (fun l -> l.Model.loc_name) exeio.Model.aut_locations in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " stage") true (List.mem stage names))
    [ "Waiting"; "Active"; "Reading"; "Computing"; "Writing" ]

let test_aperiodic_exeio () =
  let psm =
    Transform.psm_of_pim (immediate_pim ())
      (scheme ~invocation:(Scheme.Aperiodic 0) ())
  in
  let exeio = Model.find_automaton psm.Transform.psm_net "EXEIO" in
  (* invoked by the kick broadcast *)
  Alcotest.(check bool) "kick receiver" true
    (List.mem Transform.Names.kick_chan (Model.receives_of exeio));
  (* the IFMI kicks on insertion *)
  let ifmi = Model.find_automaton psm.Transform.psm_net "IFMI_Press" in
  Alcotest.(check bool) "IFMI kicks" true
    (List.mem Transform.Names.kick_chan (Model.sends_of ifmi))

let test_aperiodic_cooldown () =
  let psm =
    Transform.psm_of_pim (immediate_pim ())
      (scheme ~invocation:(Scheme.Aperiodic 8) ())
  in
  let exeio = Model.find_automaton psm.Transform.psm_net "EXEIO" in
  let names = List.map (fun l -> l.Model.loc_name) exeio.Model.aut_locations in
  Alcotest.(check bool) "cooldown location" true (List.mem "Cooldown" names)

let test_read_one_vs_read_all () =
  let all = Transform.psm_of_pim (pim ()) (scheme ()) in
  let one =
    Transform.psm_of_pim (pim ())
      (scheme ~input_comm:(Scheme.Buffer (2, Scheme.Read_one)) ())
  in
  let reading_self_loops psm =
    List.length
      (List.filter
         (fun e -> e.Model.edge_src = "Reading" && e.Model.edge_dst = "Reading")
         (edges_of psm "EXEIO"))
  in
  Alcotest.(check int) "read-all loops in Reading" 1 (reading_self_loops all);
  Alcotest.(check int) "read-one goes straight to Computing" 0
    (reading_self_loops one)

let test_uncovered_input_rejected () =
  let s = { (scheme ()) with Scheme.is_inputs = [] } in
  (match Transform.psm_of_pim (pim ()) s with
   | exception Transform.Transform_error _ -> ()
   | _ -> Alcotest.fail "uncovered input accepted")

let test_aperiodic_timed_wait_rejected () =
  (* The lamp controller waits x >= 10 before answering; an aperiodic
     executive would never wake it up. *)
  (match
     Transform.psm_of_pim (pim ()) (scheme ~invocation:(Scheme.Aperiodic 0) ())
   with
   | exception Transform.Transform_error _ -> ()
   | _ -> Alcotest.fail "aperiodic + timed wait accepted")

let test_unrealisable_scheme_rejected () =
  let s =
    scheme
      ~input:
        { Scheme.in_signal = Scheme.Pulse;
          in_read = Scheme.Polling 5;
          in_delay = Scheme.delay 1 3 }
      ()
  in
  (match Transform.psm_of_pim (pim ()) s with
   | exception Transform.Transform_error _ -> ()
   | _ -> Alcotest.fail "pulse+polling scheme accepted")

(* --- behavior ------------------------------------------------------------ *)

let test_psm_end_to_end_reachability () =
  (* The lamp still turns on through the whole platform chain. *)
  let psm = Transform.psm_of_pim (pim ()) (scheme ()) in
  let t = Mc.Explorer.make psm.Transform.psm_net in
  let happy = Mc.Explorer.at t ~aut:"User" ~loc:"Happy" in
  Alcotest.(check bool) "user sees the lamp" true
    ((Mc.Explorer.reachable t happy).Mc.Explorer.r_trace <> None)

let test_psm_delay_grows () =
  (* The platform can only add delay: verified PSM bound >= PIM bound. *)
  let pim_bound =
    (Analysis.Queries.max_delay pim_net ~trigger:"m_Press" ~response:"c_On"
       ~ceiling:1000)
      .Analysis.Queries.dr_sup
  in
  let psm = Transform.psm_of_pim (pim ()) (scheme ()) in
  let psm_bound =
    (Analysis.Queries.max_delay psm.Transform.psm_net ~trigger:"m_Press"
       ~response:"c_On" ~ceiling:1000)
      .Analysis.Queries.dr_sup
  in
  match pim_bound, psm_bound with
  | Mc.Explorer.Sup (a, _), Mc.Explorer.Sup (b, _) ->
    Alcotest.(check bool) (Fmt.str "PSM %d >= PIM %d" b a) true (b >= a)
  | _ -> Alcotest.fail "expected bounded delays on both models"

let suite =
  [ Alcotest.test_case "PIM channel inference" `Quick test_pim_inference;
    Alcotest.test_case "PIM rejects missing automaton" `Quick
      test_pim_rejects_missing_automaton;
    Alcotest.test_case "PIM rejects binary boundary channels" `Quick
      test_pim_rejects_binary_boundary;
    Alcotest.test_case "PIM rejects clock-guarded inputs" `Quick
      test_pim_rejects_clock_guarded_input;
    Alcotest.test_case "MIO preserves structure" `Quick
      test_mio_preserves_structure;
    Alcotest.test_case "ENV unchanged" `Quick test_env_unchanged;
    Alcotest.test_case "PSM validates" `Quick test_psm_validates;
    Alcotest.test_case "PSM composition" `Quick test_psm_composition;
    Alcotest.test_case "interrupt IFMI shape" `Quick test_interrupt_ifmi_shape;
    Alcotest.test_case "polling adds a latch" `Quick test_polling_adds_latch;
    Alcotest.test_case "sustained latch autodrops" `Quick
      test_sustained_latch_autodrops;
    Alcotest.test_case "shared variable loss flags" `Quick
      test_shared_variable_flags;
    Alcotest.test_case "buffer overflow flags" `Quick test_buffer_flags;
    Alcotest.test_case "periodic EXEIO stages" `Quick
      test_periodic_exeio_stages;
    Alcotest.test_case "aperiodic EXEIO kick wiring" `Quick
      test_aperiodic_exeio;
    Alcotest.test_case "aperiodic cooldown" `Quick test_aperiodic_cooldown;
    Alcotest.test_case "read-one vs read-all" `Quick test_read_one_vs_read_all;
    Alcotest.test_case "uncovered input rejected" `Quick
      test_uncovered_input_rejected;
    Alcotest.test_case "aperiodic + timed wait rejected" `Quick
      test_aperiodic_timed_wait_rejected;
    Alcotest.test_case "unrealisable scheme rejected" `Quick
      test_unrealisable_scheme_rejected;
    Alcotest.test_case "end-to-end reachability" `Quick
      test_psm_end_to_end_reachability;
    Alcotest.test_case "platform only adds delay" `Quick test_psm_delay_grows ]
