(* Tests for implementation schemes: builders, Example 1 (IS1), and the
   realisability checks of Section III. *)

let ok_scheme () = Scheme.is1 ~inputs:[ "m_a" ] ~outputs:[ "c_b" ] ()

let test_is1_shape () =
  let is = ok_scheme () in
  Alcotest.(check (list string)) "no problems" [] (Scheme.check is);
  let input = Scheme.input_spec is "m_a" in
  (match input.Scheme.in_signal, input.Scheme.in_read with
   | Scheme.Pulse, Scheme.Interrupt Scheme.Rising -> ()
   | _ -> Alcotest.fail "IS1 inputs are rising-edge interrupts on pulses");
  Alcotest.(check (pair int int)) "input delay window" (1, 3)
    (input.Scheme.in_delay.Scheme.delay_min,
     input.Scheme.in_delay.Scheme.delay_max);
  (match is.Scheme.is_input_comm with
   | Scheme.Buffer (5, Scheme.Read_all) -> ()
   | _ -> Alcotest.fail "IS1 uses 5-slot read-all buffers");
  (match is.Scheme.is_invocation with
   | Scheme.Periodic 100 -> ()
   | _ -> Alcotest.fail "IS1 invokes periodically at 100")

let expect_rejected label is =
  match Scheme.check is with
  | [] -> Alcotest.failf "%s should be rejected" label
  | _ -> ()

let test_pulse_polling_rejected () =
  let is = ok_scheme () in
  expect_rejected "pulse + polling"
    { is with
      Scheme.is_inputs =
        [ ("m_a",
           { Scheme.in_signal = Scheme.Pulse;
             in_read = Scheme.Polling 10;
             in_delay = Scheme.delay 1 3 }) ] }

let test_polling_misses_short_sustained () =
  let is = ok_scheme () in
  expect_rejected "interval > duration"
    { is with
      Scheme.is_inputs =
        [ ("m_a", Scheme.polling_input ~signal:(Scheme.Sustained 5) ~interval:10
             (Scheme.delay 1 3)) ] }

let test_polling_ok_when_interval_fits () =
  let is = ok_scheme () in
  let is =
    { is with
      Scheme.is_inputs =
        [ ("m_a", Scheme.polling_input ~signal:(Scheme.Sustained 20) ~interval:10
             (Scheme.delay 1 3)) ] }
  in
  Alcotest.(check (list string)) "accepted" [] (Scheme.check is)

let test_bad_delays_rejected () =
  let is = ok_scheme () in
  expect_rejected "delay_max < delay_min"
    { is with
      Scheme.is_inputs =
        [ ("m_a", Scheme.interrupt_input { Scheme.delay_min = 5; delay_max = 2 }) ] }

let test_bad_buffer_rejected () =
  let is = ok_scheme () in
  expect_rejected "zero buffer"
    { is with Scheme.is_input_comm = Scheme.Buffer (0, Scheme.Read_all) }

let test_bad_period_rejected () =
  let is = ok_scheme () in
  expect_rejected "zero period" { is with Scheme.is_invocation = Scheme.Periodic 0 }

let test_wcet_exceeds_period_rejected () =
  let is = ok_scheme () in
  expect_rejected "wcet > period"
    { is with Scheme.is_exec = { Scheme.wcet_min = 1; wcet_max = 200 } }

let test_negative_gap_rejected () =
  let is = ok_scheme () in
  expect_rejected "negative gap"
    { is with Scheme.is_invocation = Scheme.Aperiodic (-1) }

let test_aperiodic_ok () =
  let is = { (ok_scheme ()) with Scheme.is_invocation = Scheme.Aperiodic 0 } in
  Alcotest.(check (list string)) "accepted" [] (Scheme.check is)

let test_accessors () =
  let is = ok_scheme () in
  Alcotest.(check (option int)) "period" (Some 100) (Scheme.period_opt is);
  let aper = { is with Scheme.is_invocation = Scheme.Aperiodic 3 } in
  Alcotest.(check (option int)) "aperiodic has no period" None
    (Scheme.period_opt aper);
  (match Scheme.output_spec is "c_b" with
   | { Scheme.out_signal = Scheme.Pulse; _ } -> ()
   | _ -> Alcotest.fail "IS1 output is a pulse");
  (match Scheme.input_spec is "nope" with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "unknown input should raise")

let suite =
  [ Alcotest.test_case "IS1 shape (Example 1)" `Quick test_is1_shape;
    Alcotest.test_case "pulse + polling rejected" `Quick
      test_pulse_polling_rejected;
    Alcotest.test_case "polling misses short sustained" `Quick
      test_polling_misses_short_sustained;
    Alcotest.test_case "polling accepted when interval fits" `Quick
      test_polling_ok_when_interval_fits;
    Alcotest.test_case "inverted delay window rejected" `Quick
      test_bad_delays_rejected;
    Alcotest.test_case "zero buffer rejected" `Quick test_bad_buffer_rejected;
    Alcotest.test_case "zero period rejected" `Quick test_bad_period_rejected;
    Alcotest.test_case "wcet exceeding period rejected" `Quick
      test_wcet_exceeds_period_rejected;
    Alcotest.test_case "negative gap rejected" `Quick
      test_negative_gap_rejected;
    Alcotest.test_case "aperiodic accepted" `Quick test_aperiodic_ok;
    Alcotest.test_case "accessors" `Quick test_accessors ]
