(* Tests for the C code generator, including a differential test: the
   generated C, compiled with the system compiler and driven through a
   pipe, must agree step for step with the OCaml Code_runner on random
   invocation schedules. *)

open Ta

let loc = Model.location
let edge = Model.edge

let lamp_pim () =
  let controller =
    Model.automaton ~name:"Controller" ~initial:"Off"
      [ loc "Off"; loc ~inv:[ Clockcons.le "x" 50 ] "Switching"; loc "On" ]
      [ edge ~sync:(Model.Recv "m_Press") ~resets:[ "x" ] "Off" "Switching";
        edge ~guard:[ Clockcons.ge "x" 10 ] ~sync:(Model.Send "c_On")
          "Switching" "On";
        edge ~sync:(Model.Recv "m_Reset") "On" "Off" ]
  in
  let user =
    Model.automaton ~name:"User" ~initial:"U"
      [ loc "U" ]
      [ edge ~sync:(Model.Send "m_Press") "U" "U";
        edge ~sync:(Model.Send "m_Reset") "U" "U";
        edge ~sync:(Model.Recv "c_On") "U" "U" ]
  in
  let net =
    Model.network ~name:"lamp" ~clocks:[ "x" ] ~vars:[]
      ~channels:
        [ ("m_Press", Model.Broadcast);
          ("m_Reset", Model.Broadcast);
          ("c_On", Model.Broadcast) ]
      [ controller; user ]
  in
  Transform.Pim.make net ~software:"Controller" ~environment:"User"

let gpca_pim () = Gpca.Model.pim ~variant:Gpca.Model.Full Gpca.Params.default

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  scan 0

(* --- structural tests ------------------------------------------------------ *)

let test_header_api () =
  let header = Codegen.emit_header (lamp_pim ()) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Fmt.str "header has %S" fragment) true
        (contains header fragment))
    [ "controller_state_t";
      "CONTROLLER_LOC_Off";
      "CONTROLLER_IN_m_Press";
      "CONTROLLER_OUT_c_On";
      "uint32_t clk_x;";
      "bool controller_deliver";
      "int controller_compute" ]

let test_source_guards () =
  let source = Codegen.emit_source (lamp_pim ()) in
  Alcotest.(check bool) "wraparound-safe guard" true
    (contains source "(int32_t)(now - s->clk_x) >= 10")

let test_rejects_impure_software () =
  let soft =
    Model.automaton ~name:"S" ~initial:"A"
      [ loc "A" ]
      [ edge ~updates:[ ("v", Expr.int 1) ] ~sync:(Model.Recv "m_a") "A" "A" ]
  in
  let env =
    Model.automaton ~name:"E" ~initial:"B"
      [ loc "B" ]
      [ edge ~sync:(Model.Send "m_a") "B" "B" ]
  in
  let net =
    Model.network ~name:"impure" ~clocks:[] ~vars:[ ("v", Model.flag ()) ]
      ~channels:[ ("m_a", Model.Broadcast) ]
      [ soft; env ]
  in
  let pim = Transform.Pim.make net ~software:"S" ~environment:"E" in
  (match Codegen.emit_source pim with
   | exception Codegen.Unsupported _ -> ()
   | _ -> Alcotest.fail "impure software accepted")

(* --- compile-and-run plumbing ---------------------------------------------- *)

let compile_harness pim =
  let dir = Filename.temp_file "psv_codegen" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let prefix = Codegen.prefix pim in
  let write name text =
    let oc = open_out (Filename.concat dir name) in
    output_string oc text;
    close_out oc
  in
  write (prefix ^ ".h") (Codegen.emit_header pim);
  write (prefix ^ ".c") (Codegen.emit_source pim);
  write "main.c" (Codegen.emit_harness pim);
  let binary = Filename.concat dir "harness" in
  let cmd =
    Fmt.str "cc -std=c11 -Wall -Wextra -Werror -o %s %s %s 2> %s"
      (Filename.quote binary)
      (Filename.quote (Filename.concat dir (prefix ^ ".c")))
      (Filename.quote (Filename.concat dir "main.c"))
      (Filename.quote (Filename.concat dir "cc.log"))
  in
  if Sys.command cmd <> 0 then begin
    let ic = open_in (Filename.concat dir "cc.log") in
    let log = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Alcotest.failf "cc failed:@.%s" log
  end;
  binary

type harness = {
  to_c : out_channel;
  from_c : in_channel;
}

let start binary =
  let from_c, to_c = Unix.open_process binary in
  { to_c; from_c }

let stop h = ignore (Unix.close_process (h.from_c, h.to_c))

let send h fmt =
  Fmt.kstr
    (fun line ->
      output_string h.to_c (line ^ "\n");
      flush h.to_c)
    fmt

let recv h = input_line h.from_c

(* --- the differential test -------------------------------------------------- *)

type op =
  | Deliver of string * int
  | Compute of int

let run_c_detailed h ops =
  send h "init 0";
  (match recv h with "ok" -> () | l -> Alcotest.failf "init said %S" l);
  let step op =
    match op with
    | Deliver (chan, now) ->
      send h "deliver %s %d" chan now;
      [ Fmt.str "deliver:%s:%s" chan (recv h) ]
    | Compute now ->
      send h "compute %d" now;
      let rec outputs acc =
        match recv h with
        | "." -> List.rev acc
        | line -> outputs (("out:" ^ line) :: acc)
      in
      outputs []
  in
  let events = List.concat_map step ops in
  send h "location";
  (recv h, events)

let run_ocaml pim ops =
  let runner = Sim.Code_runner.create (Transform.Pim.software pim) in
  let step op =
    match op with
    | Deliver (chan, now) ->
      let consumed =
        Sim.Code_runner.deliver runner ~now:(float_of_int now) chan
      in
      [ Fmt.str "deliver:%s:%s" chan
          (if consumed then "consumed" else "discarded") ]
    | Compute now ->
      List.map
        (fun c -> "out:" ^ c)
        (Sim.Code_runner.compute runner ~now:(float_of_int now))
  in
  let events = List.concat_map step ops in
  (Sim.Code_runner.location runner, events)

let random_schedule rng pim n =
  let inputs = pim.Transform.Pim.pim_inputs in
  let now = ref 0 in
  List.init n (fun _ ->
      now := !now + Sim.Rng.int_range rng 0 400;
      if Sim.Rng.int_range rng 0 2 = 0 && inputs <> [] then
        Deliver
          (List.nth inputs (Sim.Rng.int_range rng 0 (List.length inputs - 1)),
           !now)
      else Compute !now)

let differential name pim ~rounds ~ops_per_round =
  let binary = compile_harness pim in
  let h = start binary in
  let rng = Sim.Rng.create 20260706 in
  Fun.protect
    ~finally:(fun () -> stop h)
    (fun () ->
      for round = 1 to rounds do
        let ops = random_schedule rng pim ops_per_round in
        let c_loc, c_events = run_c_detailed h ops in
        let ml_loc, ml_events = run_ocaml pim ops in
        if c_events <> ml_events || c_loc <> ml_loc then
          Alcotest.failf
            "%s round %d diverged:@.C:     %s @ %s@.OCaml: %s @ %s" name round
            (String.concat " " c_events)
            c_loc
            (String.concat " " ml_events)
            ml_loc
      done)

let test_differential_lamp () =
  differential "lamp" (lamp_pim ()) ~rounds:50 ~ops_per_round:40

let test_differential_gpca () =
  differential "gpca" (gpca_pim ()) ~rounds:50 ~ops_per_round:60

let suite =
  [ Alcotest.test_case "header API" `Quick test_header_api;
    Alcotest.test_case "wraparound-safe guards" `Quick test_source_guards;
    Alcotest.test_case "impure software rejected" `Quick
      test_rejects_impure_software;
    Alcotest.test_case "differential vs Code_runner (lamp)" `Slow
      test_differential_lamp;
    Alcotest.test_case "differential vs Code_runner (GPCA)" `Slow
      test_differential_gpca ]
