(* Cross-validation of the zone-based explorer against the independent
   discrete-time reference semantics of [Discrete]: on random closed
   networks, both must reach exactly the same location vectors.

   This is the strongest correctness evidence for the model checker: the
   two implementations share the transition-enumeration conventions but
   nothing of the timing machinery (zones + extrapolation + activity
   reduction vs. concrete unit-step valuations). *)


let zone_reachable_locations net =
  let t = Mc.Explorer.make net in
  let seen = Hashtbl.create 64 in
  (* enumerate by running reachability with an always-false predicate and
     a collecting side effect *)
  let collect st =
    Hashtbl.replace seen (Array.to_list st.Mc.Explorer.st_locs) ();
    false
  in
  ignore (Mc.Explorer.reachable t collect);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let prop_agrees ~reduce_label ~make_explorer =
  QCheck.Test.make
    ~name:
      (Fmt.str "zone explorer agrees with discrete semantics (%s)"
         reduce_label)
    ~count:150 Gen.arb_network
    (fun net ->
      match Discrete.reachable_locations net with
      | None -> QCheck.assume_fail ()  (* state space too large; skip *)
      | Some reference ->
        let t = make_explorer net in
        let seen = Hashtbl.create 64 in
        let collect st =
          Hashtbl.replace seen (Array.to_list st.Mc.Explorer.st_locs) ();
          false
        in
        ignore (Mc.Explorer.reachable t collect);
        let zones =
          List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
        in
        if zones = reference then true
        else
          QCheck.Test.fail_reportf
            "reachable location sets differ@.zone: %a@.discrete: %a"
            Fmt.(Dump.list (Dump.list int))
            zones
            Fmt.(Dump.list (Dump.list int))
            reference)

let prop_zone_vs_discrete =
  prop_agrees ~reduce_label:"with activity reduction"
    ~make_explorer:(fun net -> Mc.Explorer.make net)

let prop_zone_vs_discrete_noreduce =
  prop_agrees ~reduce_label:"without reduction"
    ~make_explorer:(fun net -> Mc.Explorer.make ~reduce:false net)

let prop_reduction_invariant =
  QCheck.Test.make
    ~name:"activity reduction does not change reachable locations"
    ~count:150 Gen.arb_network
    (fun net ->
      zone_reachable_locations net
      = (let t = Mc.Explorer.make ~reduce:false net in
         let seen = Hashtbl.create 64 in
         let collect st =
           Hashtbl.replace seen (Array.to_list st.Mc.Explorer.st_locs) ();
           false
         in
         ignore (Mc.Explorer.reachable t collect);
         List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])))

let prop_lu_agrees =
  prop_agrees ~reduce_label:"ExtraLU"
    ~make_explorer:(fun net -> Mc.Explorer.make ~lu:true net)

let prop_tight_invariant =
  QCheck.Test.make
    ~name:"tight extrapolation does not change reachable locations"
    ~count:100 Gen.arb_network
    (fun net ->
      zone_reachable_locations net
      = (let t = Mc.Explorer.make ~tight:true net in
         let seen = Hashtbl.create 64 in
         let collect st =
           Hashtbl.replace seen (Array.to_list st.Mc.Explorer.st_locs) ();
           false
         in
         ignore (Mc.Explorer.reachable t collect);
         List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])))

let suite =
  [ QCheck_alcotest.to_alcotest prop_zone_vs_discrete;
    QCheck_alcotest.to_alcotest prop_zone_vs_discrete_noreduce;
    QCheck_alcotest.to_alcotest prop_lu_agrees;
    QCheck_alcotest.to_alcotest prop_reduction_invariant;
    QCheck_alcotest.to_alcotest prop_tight_invariant ]
