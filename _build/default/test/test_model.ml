(* Tests for the model layer: builders, accessors, the transformations
   used by the PIM->PSM construction, and every class of validation
   failure. *)

open Ta

let loc = Model.location
let edge = Model.edge

let valid_net () =
  let a =
    Model.automaton ~name:"A" ~initial:"L0"
      [ loc ~inv:[ Clockcons.le "x" 5 ] "L0"; loc "L1" ]
      [ edge ~guard:[ Clockcons.ge "x" 2 ] ~sync:(Model.Send "go")
          ~resets:[ "x" ]
          ~updates:[ ("n", Expr.(var "n" + int 1)) ]
          "L0" "L1" ]
  in
  let b =
    Model.automaton ~name:"B" ~initial:"M0"
      [ loc "M0"; loc "M1" ]
      [ edge ~sync:(Model.Recv "go") "M0" "M1" ]
  in
  Model.network ~name:"n" ~clocks:[ "x" ]
    ~vars:[ ("n", Model.int_var ~min:0 ~max:3 0) ]
    ~channels:[ ("go", Model.Binary) ]
    [ a; b ]

let test_validate_ok () =
  Alcotest.(check (list string)) "no problems" [] (Model.validate (valid_net ()))

let expect_problem mutate fragment =
  let net = mutate (valid_net ()) in
  let problems = Model.validate net in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec scan i =
      i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
    in
    scan 0
  in
  let mentions p = contains p fragment in
  Alcotest.(check bool)
    (Fmt.str "a problem mentioning %S in %a" fragment
       Fmt.(Dump.list string) problems)
    true
    (List.exists mentions problems)

let test_validate_unknown_clock () =
  expect_problem
    (fun net -> { net with Model.net_clocks = [] })
    "unknown clock"

let test_validate_unknown_var () =
  expect_problem (fun net -> { net with Model.net_vars = [] }) "unknown variable"

let test_validate_unknown_channel () =
  expect_problem (fun net -> { net with Model.net_channels = [] })
    "unknown channel"

let test_validate_bad_initial () =
  expect_problem
    (fun net ->
      let a = Model.find_automaton net "A" in
      Model.replace_automaton net "A" { a with Model.aut_initial = "Nowhere" })
    "initial location"

let test_validate_bad_edge_target () =
  expect_problem
    (fun net ->
      let a = Model.find_automaton net "A" in
      Model.replace_automaton net "A"
        { a with Model.aut_edges = [ edge "L0" "Nowhere" ] })
    "unknown target"

let test_validate_duplicates () =
  expect_problem
    (fun net -> { net with Model.net_clocks = [ "x"; "x" ] })
    "duplicate clock"

let test_validate_broadcast_clock_guard () =
  expect_problem
    (fun net ->
      let b = Model.find_automaton net "B" in
      let guarded =
        edge ~guard:[ Clockcons.ge "x" 1 ] ~sync:(Model.Recv "go") "M0" "M1"
      in
      let net =
        Model.replace_automaton net "B" { b with Model.aut_edges = [ guarded ] }
      in
      { net with Model.net_channels = [ ("go", Model.Broadcast) ] })
    "broadcast receive"

let test_sends_receives () =
  let net = valid_net () in
  Alcotest.(check (list string)) "A sends" [ "go" ]
    (Model.sends_of (Model.find_automaton net "A"));
  Alcotest.(check (list string)) "A receives" []
    (Model.receives_of (Model.find_automaton net "A"));
  Alcotest.(check (list string)) "B receives" [ "go" ]
    (Model.receives_of (Model.find_automaton net "B"))

let test_rename_channels () =
  let net = valid_net () in
  let a = Model.find_automaton net "A" in
  let renamed = Model.rename_channels (fun c -> "i_" ^ c) a in
  Alcotest.(check (list string)) "renamed" [ "i_go" ] (Model.sends_of renamed);
  (* structure untouched *)
  Alcotest.(check int) "same edge count"
    (List.length a.Model.aut_edges)
    (List.length renamed.Model.aut_edges)

let test_guard_all_edges () =
  let net = valid_net () in
  let a = Model.find_automaton net "A" in
  let gated = Model.guard_all_edges (Expr.var_eq "n" 0) a in
  List.iter
    (fun e ->
      match e.Model.edge_pred with
      | Expr.Cmp _ | Expr.And _ -> ()
      | p -> Alcotest.failf "edge not gated: %a" Expr.pp_pred p)
    gated.Model.aut_edges;
  (* except-filtered edges stay untouched *)
  let skipped = Model.guard_all_edges ~except:(fun _ -> true) Expr.False a in
  Alcotest.(check bool) "except skips" true
    (List.for_all2
       (fun e e' -> e.Model.edge_pred = e'.Model.edge_pred)
       a.Model.aut_edges skipped.Model.aut_edges)

let test_size () =
  let locations, edges = Model.size (valid_net ()) in
  Alcotest.(check (pair int int)) "size" (4, 2) (locations, edges)

let test_channel_kind () =
  let net = valid_net () in
  Alcotest.(check bool) "binary" true
    (Model.channel_kind net "go" = Model.Binary)

let test_add_automata () =
  let net = valid_net () in
  let c = Model.automaton ~name:"C" ~initial:"Z" [ loc "Z" ] [] in
  let net' = Model.add_automata net [ c ] in
  Alcotest.(check int) "three automata" 3 (List.length net'.Model.net_automata)

let test_flag_bounds () =
  let f = Model.flag () in
  Alcotest.(check (pair int int)) "flag range" (0, 1)
    (f.Model.var_min, f.Model.var_max);
  Alcotest.(check int) "flag init" 0 f.Model.var_init

let suite =
  [ Alcotest.test_case "validate accepts a good network" `Quick
      test_validate_ok;
    Alcotest.test_case "validate: unknown clock" `Quick
      test_validate_unknown_clock;
    Alcotest.test_case "validate: unknown variable" `Quick
      test_validate_unknown_var;
    Alcotest.test_case "validate: unknown channel" `Quick
      test_validate_unknown_channel;
    Alcotest.test_case "validate: bad initial" `Quick test_validate_bad_initial;
    Alcotest.test_case "validate: bad edge target" `Quick
      test_validate_bad_edge_target;
    Alcotest.test_case "validate: duplicates" `Quick test_validate_duplicates;
    Alcotest.test_case "validate: broadcast clock guard" `Quick
      test_validate_broadcast_clock_guard;
    Alcotest.test_case "sends/receives" `Quick test_sends_receives;
    Alcotest.test_case "rename channels" `Quick test_rename_channels;
    Alcotest.test_case "guard all edges" `Quick test_guard_all_edges;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "channel kind" `Quick test_channel_kind;
    Alcotest.test_case "add automata" `Quick test_add_automata;
    Alcotest.test_case "flag bounds" `Quick test_flag_bounds ]
