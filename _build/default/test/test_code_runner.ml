(* Tests for the generated-code interpreter. *)

open Ta

let loc = Model.location
let edge = Model.edge

let lamp =
  Model.automaton ~name:"Controller" ~initial:"Off"
    [ loc "Off"; loc ~inv:[ Clockcons.le "x" 50 ] "Switching"; loc "On" ]
    [ edge ~sync:(Model.Recv "m_Press") ~resets:[ "x" ] "Off" "Switching";
      edge ~guard:[ Clockcons.ge "x" 10 ] ~sync:(Model.Send "c_On")
        "Switching" "On" ]

let test_deliver_consumes () =
  let r = Sim.Code_runner.create lamp in
  Alcotest.(check bool) "consumed" true
    (Sim.Code_runner.deliver r ~now:5.0 "m_Press");
  Alcotest.(check string) "moved" "Switching" (Sim.Code_runner.location r)

let test_deliver_discards () =
  let r = Sim.Code_runner.create lamp in
  Alcotest.(check bool) "unknown input discarded" false
    (Sim.Code_runner.deliver r ~now:5.0 "m_Nothing");
  ignore (Sim.Code_runner.deliver r ~now:5.0 "m_Press");
  (* already switching: a second press has no enabled edge *)
  Alcotest.(check bool) "second press discarded" false
    (Sim.Code_runner.deliver r ~now:6.0 "m_Press")

let test_guard_respects_invocation_instant () =
  let r = Sim.Code_runner.create lamp in
  ignore (Sim.Code_runner.deliver r ~now:100.0 "m_Press");
  (* x = 5 at the next invocation: guard x >= 10 not yet true *)
  Alcotest.(check (list string)) "too early" []
    (Sim.Code_runner.compute r ~now:105.0);
  (* x = 12: fires and emits *)
  Alcotest.(check (list string)) "fires" [ "c_On" ]
    (Sim.Code_runner.compute r ~now:112.0);
  Alcotest.(check string) "final location" "On" (Sim.Code_runner.location r)

let test_compute_chains () =
  (* Two chained untimed outputs are emitted in one invocation. *)
  let a =
    Model.automaton ~name:"Chain" ~initial:"S0"
      [ loc "S0"; loc "S1"; loc "S2" ]
      [ edge ~sync:(Model.Send "c_a") "S0" "S1";
        edge ~sync:(Model.Send "c_b") "S1" "S2" ]
  in
  let r = Sim.Code_runner.create a in
  Alcotest.(check (list string)) "both outputs" [ "c_a"; "c_b" ]
    (Sim.Code_runner.compute r ~now:0.0)

let test_declaration_order_resolves_choice () =
  let a =
    Model.automaton ~name:"Choice" ~initial:"S"
      [ loc "S"; loc "A"; loc "B" ]
      [ edge ~sync:(Model.Send "c_first") "S" "A";
        edge ~sync:(Model.Send "c_second") "S" "B" ]
  in
  let r = Sim.Code_runner.create a in
  Alcotest.(check (list string)) "first edge wins" [ "c_first" ]
    (Sim.Code_runner.compute r ~now:0.0)

let test_reset () =
  let r = Sim.Code_runner.create lamp in
  ignore (Sim.Code_runner.deliver r ~now:5.0 "m_Press");
  Sim.Code_runner.reset r ~now:50.0;
  Alcotest.(check string) "back to initial" "Off" (Sim.Code_runner.location r);
  (* clocks were re-based at the reset *)
  ignore (Sim.Code_runner.deliver r ~now:50.0 "m_Press");
  Alcotest.(check (list string)) "guard measured from reset" []
    (Sim.Code_runner.compute r ~now:55.0)

let test_livelock_detected () =
  let a =
    Model.automaton ~name:"Loop" ~initial:"S"
      [ loc "S" ]
      [ edge "S" "S" ]
  in
  let r = Sim.Code_runner.create a in
  (match Sim.Code_runner.compute r ~now:0.0 with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "tau livelock not detected")

let test_rejects_data_guards () =
  let a =
    Model.automaton ~name:"Data" ~initial:"S"
      [ loc "S" ]
      [ edge ~pred:(Expr.var_eq "v" 1) "S" "S" ]
  in
  (match Sim.Code_runner.create a with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "data guards accepted")

let suite =
  [ Alcotest.test_case "deliver consumes enabled input" `Quick
      test_deliver_consumes;
    Alcotest.test_case "deliver discards others" `Quick test_deliver_discards;
    Alcotest.test_case "guards read the invocation clock" `Quick
      test_guard_respects_invocation_instant;
    Alcotest.test_case "compute chains outputs" `Quick test_compute_chains;
    Alcotest.test_case "declaration order resolves choice" `Quick
      test_declaration_order_resolves_choice;
    Alcotest.test_case "reset re-bases clocks" `Quick test_reset;
    Alcotest.test_case "tau livelock detected" `Quick test_livelock_detected;
    Alcotest.test_case "data guards rejected" `Quick test_rejects_data_guards ]
