(* Unit tests for the monitor layer and a fuzz test of the query/xta
   front ends: malformed input must produce errors, never exceptions. *)

let test_monitor_step () =
  let m =
    Mc.Monitor.delay ~trigger:"req" ~response:"resp" ~clock:"w" ~ceiling:10 ()
  in
  Alcotest.(check int) "initial" 0 m.Mc.Monitor.mon_initial;
  (match Mc.Monitor.step m 0 "req" with
   | Some (1, [ "w" ]) -> ()
   | _ -> Alcotest.fail "trigger should move to Waiting and reset");
  (match Mc.Monitor.step m 1 "resp" with
   | Some (0, []) -> ()
   | _ -> Alcotest.fail "response should return to Idle");
  Alcotest.(check bool) "unknown channel ignored" true
    (Mc.Monitor.step m 0 "noise" = None);
  (* re-trigger while waiting keeps the earlier start *)
  Alcotest.(check bool) "no transition on re-trigger" true
    (Mc.Monitor.step m 1 "req" = None)

let test_monitor_activity () =
  let m =
    Mc.Monitor.delay ~trigger:"req" ~response:"resp" ~clock:"w" ~ceiling:10 ()
  in
  Alcotest.(check (list string)) "inactive in Idle" [] (m.Mc.Monitor.mon_active 0);
  Alcotest.(check (list string)) "active in Waiting" [ "w" ]
    (m.Mc.Monitor.mon_active 1)

let test_monitor_validation () =
  let bad_transition =
    { Mc.Monitor.tr_src = 0; tr_chan = "a"; tr_dst = 5; tr_resets = [] }
  in
  (match
     Mc.Monitor.make ~name:"bad" ~states:[| "S" |] ~initial:0 ~clocks:[]
       [ bad_transition ]
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "out-of-range transition accepted");
  let dup =
    [ { Mc.Monitor.tr_src = 0; tr_chan = "a"; tr_dst = 0; tr_resets = [] };
      { Mc.Monitor.tr_src = 0; tr_chan = "a"; tr_dst = 1; tr_resets = [] } ]
  in
  (match
     Mc.Monitor.make ~name:"nondet" ~states:[| "S"; "T" |] ~initial:0
       ~clocks:[] dup
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "nondeterministic monitor accepted");
  (match
     Mc.Monitor.make ~name:"clock" ~states:[| "S" |] ~initial:0 ~clocks:[]
       [ { Mc.Monitor.tr_src = 0; tr_chan = "a"; tr_dst = 0;
           tr_resets = [ "ghost" ] } ]
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unknown reset clock accepted")

(* Fuzz: arbitrary strings through the two parsers must yield Ok/Error,
   never an exception. *)
let gen_garbage =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 60))

let prop_query_parser_total =
  QCheck.Test.make ~name:"query parser never raises" ~count:1000
    (QCheck.make ~print:(fun s -> s) gen_garbage)
    (fun text ->
      match Mc.Query.parse text with
      | Ok _ | Error _ -> true)

let prop_xta_parser_total =
  QCheck.Test.make ~name:"xta parser never raises" ~count:1000
    (QCheck.make ~print:(fun s -> s) gen_garbage)
    (fun text ->
      match Xta.Parse.network text with
      | Ok _ | Error _ -> true)

let suite =
  [ Alcotest.test_case "delay monitor steps" `Quick test_monitor_step;
    Alcotest.test_case "delay monitor clock activity" `Quick
      test_monitor_activity;
    Alcotest.test_case "monitor validation" `Quick test_monitor_validation;
    QCheck_alcotest.to_alcotest prop_query_parser_total;
    QCheck_alcotest.to_alcotest prop_xta_parser_total ]
