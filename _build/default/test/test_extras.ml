(* Tests for the supporting features: stimulus patterns, coverage
   reporting, and the supplemental GPCA requirements. *)

open Ta

let loc = Model.location
let edge = Model.edge

(* --- stimulus patterns --------------------------------------------------- *)

let test_stimulus_periodic () =
  Alcotest.(check (list (pair (float 0.001) string)))
    "periodic"
    [ (5.0, "a"); (15.0, "a"); (25.0, "a") ]
    (Sim.Stimulus.periodic ~start:5.0 ~every:10.0 ~n:3 "a")

let test_stimulus_burst () =
  Alcotest.(check (list (pair (float 0.001) string)))
    "burst"
    [ (100.0, "a"); (104.0, "a"); (108.0, "a") ]
    (Sim.Stimulus.burst ~at:100.0 ~gap:4.0 ~n:3 "a")

let test_stimulus_merge_sorted () =
  let merged =
    Sim.Stimulus.merge
      [ Sim.Stimulus.single ~at:50.0 "b";
        Sim.Stimulus.periodic ~every:30.0 ~n:3 "a" ]
  in
  let times = List.map fst merged in
  Alcotest.(check (list (float 0.001))) "sorted" [ 0.0; 30.0; 50.0; 60.0 ]
    times

let test_stimulus_jittered_in_range () =
  let rng = Sim.Rng.create 5 in
  let events =
    Sim.Stimulus.jittered rng ~start:10.0 ~every:20.0 ~jitter:5.0 ~n:50 "a"
  in
  List.iteri
    (fun i (at, _) ->
      let base = 10.0 +. (float_of_int i *. 20.0) in
      Alcotest.(check bool) "within jitter" true
        (at >= base && at < base +. 5.0))
    events

(* --- coverage -------------------------------------------------------------- *)

let test_coverage_flags_dead_structure () =
  let a =
    Model.automaton ~name:"P" ~initial:"A"
      [ loc "A"; loc "B"; loc "Dead" ]
      [ edge "A" "B";
        (* unreachable: guard can never hold *)
        edge ~pred:Expr.False "A" "Dead" ]
  in
  let net =
    Model.network ~name:"cov" ~clocks:[] ~vars:[] ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make net in
  let cov = Mc.Explorer.coverage t in
  Alcotest.(check (list (pair string string))) "dead location"
    [ ("P", "Dead") ]
    cov.Mc.Explorer.cov_unreached_locations;
  Alcotest.(check int) "dead edge" 1
    (List.length cov.Mc.Explorer.cov_unfired_edges)

let test_coverage_clean_model () =
  let net = Gpca.Model.network ~variant:Gpca.Model.Bolus_only Gpca.Params.default in
  let t = Mc.Explorer.make net in
  let cov = Mc.Explorer.coverage t in
  Alcotest.(check (list (pair string string))) "all locations live" []
    cov.Mc.Explorer.cov_unreached_locations;
  Alcotest.(check (list string)) "all edges live" []
    cov.Mc.Explorer.cov_unfired_edges

let test_coverage_full_gpca_psm () =
  (* Every location and edge of the bolus-only PSM is exercised — the
     generated platform automata contain no dead structure (the overflow
     branches are unreachable by design, so exclude loss edges). *)
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only Gpca.Params.default in
  let t = Mc.Explorer.make psm.Transform.psm_net in
  let cov = Mc.Explorer.coverage t in
  Alcotest.(check (list (pair string string))) "locations live" []
    cov.Mc.Explorer.cov_unreached_locations;
  (* any never-fired edge must belong to a generated platform automaton's
     loss/overflow branch (unreachable by design when the constraints
     hold), never to the software or environment *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i =
      i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun desc ->
      Alcotest.(check bool)
        (Fmt.str "unfired edge belongs to the platform: %s" desc)
        true
        (contains desc "IFMI" || contains desc "EXEIO"
         || contains desc "IFOC"))
    cov.Mc.Explorer.cov_unfired_edges

(* --- supplemental GPCA requirements ---------------------------------------- *)

let test_supplemental_pim_bounds () =
  let s = Gpca.Experiment.supplemental Gpca.Params.default in
  (match s.Gpca.Experiment.sup_alarm_pim with
   | Mc.Explorer.Sup (150, false) -> ()
   | r -> Alcotest.failf "alarm PIM bound: %a" Mc.Explorer.pp_sup_result r);
  (match s.Gpca.Experiment.sup_pause_pim with
   | Mc.Explorer.Sup (100, false) -> ()
   | r -> Alcotest.failf "pause PIM bound: %a" Mc.Explorer.pp_sup_result r);
  Alcotest.(check int) "alarm analytic" 693
    s.Gpca.Experiment.sup_alarm_analytic;
  Alcotest.(check int) "pause analytic" 643
    s.Gpca.Experiment.sup_pause_analytic;
  Alcotest.(check bool) "PSM skipped by default" true
    (s.Gpca.Experiment.sup_alarm_psm = None)

let test_full_variant_pause_path () =
  let net = Gpca.Model.network ~variant:Gpca.Model.Full Gpca.Params.default in
  let t = Mc.Explorer.make net in
  let paused = Mc.Explorer.at t ~aut:"Pump" ~loc:"Paused" in
  Alcotest.(check bool) "pause reachable" true
    ((Mc.Explorer.reachable t paused).Mc.Explorer.r_trace <> None);
  (* a bolus can restart after a pause *)
  let restarted st =
    Mc.Explorer.at t ~aut:"Pump" ~loc:"Infusing" st
    && Mc.Explorer.at t ~aut:"Patient" ~loc:"Observing" st
  in
  Alcotest.(check bool) "infusion restartable" true
    ((Mc.Explorer.reachable t restarted).Mc.Explorer.r_trace <> None)

let suite =
  [ Alcotest.test_case "stimulus: periodic" `Quick test_stimulus_periodic;
    Alcotest.test_case "stimulus: burst" `Quick test_stimulus_burst;
    Alcotest.test_case "stimulus: merge sorts" `Quick
      test_stimulus_merge_sorted;
    Alcotest.test_case "stimulus: jitter in range" `Quick
      test_stimulus_jittered_in_range;
    Alcotest.test_case "coverage flags dead structure" `Quick
      test_coverage_flags_dead_structure;
    Alcotest.test_case "coverage: GPCA PIM is clean" `Quick
      test_coverage_clean_model;
    Alcotest.test_case "coverage: PSM dead structure is loss-only" `Slow
      test_coverage_full_gpca_psm;
    Alcotest.test_case "supplemental PIM bounds" `Quick
      test_supplemental_pim_bounds;
    Alcotest.test_case "pause path behavior" `Quick
      test_full_variant_pause_path ]
