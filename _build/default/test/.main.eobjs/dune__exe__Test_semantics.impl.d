test/test_semantics.ml: Array Discrete Dump Fmt Gen Hashtbl List Mc QCheck QCheck_alcotest
