test/test_extras.ml: Alcotest Expr Fmt Gpca List Mc Model Sim String Ta Transform
