test/test_implementability.ml: Alcotest Analysis Array Clockcons Expr Gen Gpca List Mc Model QCheck QCheck_alcotest Ta
