test/test_model.ml: Alcotest Clockcons Dump Expr Fmt List Model String Ta
