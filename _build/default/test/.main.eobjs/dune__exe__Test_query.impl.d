test/test_query.ml: Alcotest Clockcons Expr Mc Model Ta
