test/test_mc.ml: Alcotest Clockcons Expr List Mc Model Ta
