test/test_code_runner.ml: Alcotest Clockcons Expr Model Sim Ta
