test/test_scheme.ml: Alcotest Scheme
