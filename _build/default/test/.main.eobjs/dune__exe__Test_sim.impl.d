test/test_sim.ml: Alcotest Clockcons List Model QCheck QCheck_alcotest Scheme Sim Ta Transform
