test/discrete.ml: Array Compiled Hashtbl List Model Queue Ta
