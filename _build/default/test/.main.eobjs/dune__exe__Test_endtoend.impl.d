test/test_endtoend.ml: Analysis Clockcons Fmt List Mc Model QCheck QCheck_alcotest Scheme Sim Ta Transform
