test/test_transform.ml: Alcotest Analysis Clockcons Expr Fmt List Mc Model Scheme Ta Transform
