test/test_monitor.ml: Alcotest Char Mc QCheck QCheck_alcotest Xta
