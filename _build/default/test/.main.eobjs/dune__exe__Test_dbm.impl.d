test/test_dbm.ml: Alcotest Array Bound Dbm Dump Fmt List QCheck QCheck_alcotest Zone
