test/test_analysis.ml: Alcotest Analysis Clockcons List Model Scheme Ta Transform
