test/test_xta.ml: Alcotest Analysis Expr Fmt Gen Gpca List Model QCheck QCheck_alcotest String Ta Transform Xta
