test/main.mli:
