test/test_codegen.ml: Alcotest Clockcons Codegen Expr Filename Fmt Fun Gpca List Model Sim String Sys Ta Transform Unix
