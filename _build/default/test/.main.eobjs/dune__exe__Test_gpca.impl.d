test/test_gpca.ml: Alcotest Analysis Gpca List Mc Psv Sim Ta Transform
