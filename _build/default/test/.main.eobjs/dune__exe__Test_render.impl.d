test/test_render.ml: Alcotest Clockcons Expr Fmt Gpca List Model Sim String Ta Transform Xta
