test/test_compiled.ml: Alcotest Array Clockcons Compiled Expr List Model Ta
