test/gen.ml: Clockcons Fmt List Model QCheck Ta
