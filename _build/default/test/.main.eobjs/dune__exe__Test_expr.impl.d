test/test_expr.ml: Alcotest Expr Fmt List QCheck QCheck_alcotest Ta
