(* Tests for the textual model format: hand-written inputs, error
   reporting, and the print->parse round-trip on fixed and random
   networks (including a generated PSM, the most feature-dense network
   the library produces). *)

open Ta

let roundtrip net =
  let text = Xta.Print.to_string net in
  match Xta.Parse.network text with
  | Ok net2 -> (text, Xta.Print.to_string net2)
  | Error msg -> Alcotest.failf "re-parse failed: %s@.%s" msg text

let check_roundtrip name net =
  let first, second = roundtrip net in
  Alcotest.(check string) name first second

let test_parse_minimal () =
  let source =
    {|
// a comment
network tiny;

clock x;
int[0,3] n = 1;
broadcast chan go;
chan ack;

process P {
  state
    A { x <= 5 },
    B;
  commit B;
  init A;
  trans
    A -> B { guard x >= 2 && x <= 4; when n != 3; sync go!;
             reset x; assign n := n + 1; };
}
|}
  in
  match Xta.Parse.network source with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok net ->
    Alcotest.(check string) "name" "tiny" net.Model.net_name;
    Alcotest.(check (list string)) "clocks" [ "x" ] net.Model.net_clocks;
    let a = Model.find_automaton net "P" in
    Alcotest.(check int) "locations" 2 (List.length a.Model.aut_locations);
    let b = Model.find_location a "B" in
    Alcotest.(check bool) "committed" true (b.Model.loc_kind = Model.Committed);
    (match a.Model.aut_edges with
     | [ e ] ->
       Alcotest.(check int) "guard atoms" 2 (List.length e.Model.edge_guard);
       Alcotest.(check bool) "sync" true (e.Model.edge_sync = Model.Send "go");
       Alcotest.(check (list string)) "resets" [ "x" ] e.Model.edge_resets;
       Alcotest.(check int) "updates" 1 (List.length e.Model.edge_updates)
     | edges -> Alcotest.failf "expected 1 edge, got %d" (List.length edges))

let test_parse_errors_have_lines () =
  let check_error source =
    match Xta.Parse.network source with
    | Ok _ -> Alcotest.failf "bogus input accepted: %s" source
    | Error msg ->
      Alcotest.(check bool)
        (Fmt.str "error mentions a line: %s" msg)
        true
        (String.length msg > 5 && String.sub msg 0 5 = "line ")
  in
  check_error "netwrk x;";
  check_error "network x; process P { }";
  check_error "network x; clock 42;";
  check_error "network x; process P { state A; init A; trans A -> B { sync q; }; }";
  check_error "network x; int[0] v = 0;"

let test_lexer_rejects_garbage () =
  match Xta.Parse.network "network x; \x01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "control character accepted"

let test_roundtrip_gpca () =
  check_roundtrip "gpca PIM"
    (Gpca.Model.network Gpca.Params.default)

let test_roundtrip_gpca_psm () =
  check_roundtrip "gpca PSM"
    (Gpca.Model.psm Gpca.Params.default).Transform.psm_net

let test_roundtrip_preserves_semantics () =
  (* Beyond text equality: the re-parsed network verifies identically. *)
  let net = Gpca.Model.network ~variant:Gpca.Model.Bolus_only Gpca.Params.default in
  let text = Xta.Print.to_string net in
  match Xta.Parse.network text with
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg
  | Ok net2 ->
    let sup n =
      (Analysis.Queries.max_delay n ~trigger:Gpca.Model.bolus_req
         ~response:Gpca.Model.start_infusion ~ceiling:1000)
        .Analysis.Queries.dr_sup
    in
    Alcotest.(check bool) "same verified bound" true (sup net = sup net2)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"print/parse round-trip on random networks"
    ~count:200 Gen.arb_network
    (fun net ->
      let text = Xta.Print.to_string net in
      match Xta.Parse.network text with
      | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s@.%s" msg text
      | Ok net2 ->
        let text2 = Xta.Print.to_string net2 in
        if text = text2 then true
        else
          QCheck.Test.fail_reportf "unstable round-trip:@.%s@.vs@.%s" text text2)

(* Random data expressions survive the trip through an edge assign. *)
let prop_roundtrip_expressions =
  let gen_net_with_pred =
    let open QCheck.Gen in
    let gen_expr =
      sized
      @@ fix (fun self n ->
             if n <= 0 then
               oneof
                 [ map Expr.int (int_range (-9) 9);
                   return (Expr.var "v") ]
             else
               let sub = self (n / 2) in
               oneof
                 [ map2 (fun a b -> Expr.Add (a, b)) sub sub;
                   map2 (fun a b -> Expr.Sub (a, b)) sub sub;
                   map2 (fun a b -> Expr.Mul (a, b)) sub sub;
                   map (fun a -> Expr.Neg a) sub ])
    in
    let* rhs = gen_expr in
    let* lhs = gen_expr in
    let a =
      Ta.Model.automaton ~name:"P" ~initial:"A"
        [ Ta.Model.location "A" ]
        [ Ta.Model.edge
            ~pred:(Expr.le lhs rhs)
            ~updates:[ ("v", rhs) ]
            "A" "A" ]
    in
    return
      (Ta.Model.network ~name:"exprs" ~clocks:[]
         ~vars:[ ("v", Ta.Model.int_var ~min:(-1000) ~max:1000 0) ]
         ~channels:[] [ a ])
  in
  QCheck.Test.make ~name:"round-trip preserves expressions" ~count:300
    (QCheck.make ~print:(Fmt.to_to_string Ta.Model.pp) gen_net_with_pred)
    (fun net ->
      let text = Xta.Print.to_string net in
      match Xta.Parse.network text with
      | Error msg -> QCheck.Test.fail_reportf "parse failed: %s@.%s" msg text
      | Ok net2 -> Xta.Print.to_string net2 = text)

let suite =
  [ Alcotest.test_case "parse a hand-written model" `Quick test_parse_minimal;
    Alcotest.test_case "errors carry line numbers" `Quick
      test_parse_errors_have_lines;
    Alcotest.test_case "lexer rejects garbage" `Quick test_lexer_rejects_garbage;
    Alcotest.test_case "round-trip: GPCA PIM" `Quick test_roundtrip_gpca;
    Alcotest.test_case "round-trip: GPCA PSM" `Quick test_roundtrip_gpca_psm;
    Alcotest.test_case "round-trip preserves semantics" `Quick
      test_roundtrip_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_roundtrip_expressions ]
