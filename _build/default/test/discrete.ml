(* An independent discrete-time reference semantics used as an oracle for
   the zone-based explorer.

   For "closed" timed automata (no strict comparisons), unit-step
   integer-time semantics reaches exactly the same locations as the dense
   semantics, provided clocks are capped just above the largest constant.
   This implementation deliberately shares no zone machinery with the
   explorer — it executes concrete integer valuations breadth-first — so
   agreement between the two is meaningful evidence. *)

open Ta

type state = {
  locs : int array;
  vars : int array;
  clocks : int array;  (* index 0 unused *)
}

let cap comp =
  Array.mapi
    (fun i k -> if i = 0 then 0 else k + 1)
    comp.Compiled.c_max_consts

(* concrete satisfaction of compiled difference constraints *)
let dc_sat clocks dcs =
  List.for_all
    (fun (dc : Compiled.dconstraint) ->
      let diff = clocks.(dc.Compiled.dc_i) - clocks.(dc.Compiled.dc_j) in
      if dc.Compiled.dc_strict then diff < dc.Compiled.dc_bound
      else diff <= dc.Compiled.dc_bound)
    dcs

let loc_kind comp ai li =
  comp.Compiled.c_automata.(ai).Compiled.ca_locs.(li).Compiled.cl_kind

let for_all_automata comp st f =
  let n = Array.length comp.Compiled.c_automata in
  let rec loop ai = ai >= n || (f ai st.locs.(ai) && loop (ai + 1)) in
  loop 0

let exists_automaton comp st f =
  not (for_all_automata comp st (fun ai li -> not (f ai li)))

let invariants_ok comp st =
  for_all_automata comp st (fun ai li ->
      dc_sat st.clocks
        comp.Compiled.c_automata.(ai).Compiled.ca_locs.(li).Compiled.cl_inv)

let committed_present comp st =
  exists_automaton comp st (fun ai li -> loc_kind comp ai li = Model.Committed)

let no_delay comp st =
  exists_automaton comp st (fun ai li ->
      match loc_kind comp ai li with
      | Model.Urgent | Model.Committed -> true
      | Model.Normal -> false)

let fire comp st movers =
  let clocks = Array.copy st.clocks in
  let guards_ok =
    List.for_all (fun (_, ce) -> dc_sat clocks ce.Compiled.ce_guard) movers
  in
  if not guards_ok then None
  else begin
    let locs = Array.copy st.locs in
    List.iter (fun (ai, ce) -> locs.(ai) <- ce.Compiled.ce_dst) movers;
    let vars =
      List.fold_left
        (fun vals (_, ce) ->
          Compiled.apply_updates comp vals ce.Compiled.ce_updates)
        st.vars movers
    in
    List.iter
      (fun (_, ce) -> List.iter (fun c -> clocks.(c) <- 0) ce.Compiled.ce_resets)
      movers;
    let st' = { locs; vars; clocks } in
    if invariants_ok comp st' then Some st' else None
  end

let successors comp st =
  let nauts = Array.length comp.Compiled.c_automata in
  let com = committed_present comp st in
  let allowed movers =
    (not com)
    || List.exists
         (fun (ai, ce) -> loc_kind comp ai ce.Compiled.ce_src = Model.Committed)
         movers
  in
  let acc = ref [] in
  let try_fire movers =
    if allowed movers then
      match fire comp st movers with
      | Some st' -> acc := st' :: !acc
      | None -> ()
  in
  let edges_of ai select =
    List.filter
      (fun ce ->
        select ce.Compiled.ce_sync && ce.Compiled.ce_pred st.vars)
      comp.Compiled.c_automata.(ai).Compiled.ca_out.(st.locs.(ai))
  in
  (* tau *)
  for ai = 0 to nauts - 1 do
    List.iter
      (fun ce -> try_fire [ (ai, ce) ])
      (edges_of ai (function Compiled.CTau -> true | _ -> false))
  done;
  (* channels *)
  let nchans = Array.length comp.Compiled.c_chan_kinds in
  for ch = 0 to nchans - 1 do
    let senders = ref [] in
    for ai = nauts - 1 downto 0 do
      List.iter
        (fun ce -> senders := (ai, ce) :: !senders)
        (edges_of ai (function Compiled.CSend c -> c = ch | _ -> false))
    done;
    match comp.Compiled.c_chan_kinds.(ch) with
    | Model.Binary ->
      List.iter
        (fun (sa, se) ->
          for ra = 0 to nauts - 1 do
            if ra <> sa then
              List.iter
                (fun re ->
                  (* binary receivers may have clock guards: enabledness
                     includes the clock guard on the concrete valuation *)
                  if dc_sat st.clocks re.Compiled.ce_guard then
                    try_fire [ (sa, se); (ra, re) ])
                (edges_of ra (function
                  | Compiled.CRecv c -> c = ch
                  | _ -> false))
          done)
        !senders
    | Model.Broadcast ->
      List.iter
        (fun (sa, se) ->
          (* every automaton with an enabled receive participates; one
             choice per automaton *)
          let choices = ref [ [] ] in
          for ai = nauts - 1 downto 0 do
            if ai <> sa then begin
              let edges =
                edges_of ai (function
                  | Compiled.CRecv c -> c = ch
                  | _ -> false)
              in
              if edges <> [] then
                choices :=
                  List.concat_map
                    (fun partial ->
                      List.map (fun e -> (ai, e) :: partial) edges)
                    !choices
            end
          done;
          List.iter (fun receivers -> try_fire ((sa, se) :: receivers))
            !choices)
        !senders
  done;
  (* unit delay *)
  if not (no_delay comp st) then begin
    let caps = cap comp in
    let clocks =
      Array.mapi (fun i v -> if i = 0 then 0 else min (v + 1) caps.(i)) st.clocks
    in
    let st' = { st with clocks } in
    if invariants_ok comp st' then acc := st' :: !acc
  end;
  !acc

(* Reachable location vectors, breadth-first, with a step bound. *)
let reachable_locations ?(limit = 200_000) net =
  let comp = Compiled.compile net in
  let initial =
    { locs =
        Array.map (fun a -> a.Compiled.ca_initial) comp.Compiled.c_automata;
      vars = Array.copy comp.Compiled.c_var_init;
      clocks = Array.make (comp.Compiled.c_nclocks + 1) 0 }
  in
  let seen = Hashtbl.create 1024 in
  let loc_set = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push st =
    if not (Hashtbl.mem seen st) then begin
      Hashtbl.replace seen st ();
      Hashtbl.replace loc_set (Array.to_list st.locs) ();
      Queue.push st queue
    end
  in
  if invariants_ok comp initial then push initial;
  let steps = ref 0 in
  while (not (Queue.is_empty queue)) && !steps < limit do
    incr steps;
    let st = Queue.pop queue in
    List.iter push (successors comp st)
  done;
  if !steps >= limit then None
  else
    Some
      (List.sort compare
         (Hashtbl.fold (fun k () acc -> k :: acc) loc_set []))
