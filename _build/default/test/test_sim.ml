(* Tests for the discrete-event platform simulator: determinism, the
   mc-boundary mechanisms, io-boundary policies, loss behavior, and the
   measurement layer. *)

open Ta

let loc = Model.location
let edge = Model.edge

let lamp_pim () =
  let controller =
    Model.automaton ~name:"Controller" ~initial:"Off"
      [ loc "Off"; loc ~inv:[ Clockcons.le "x" 50 ] "Switching"; loc "On" ]
      [ edge ~sync:(Model.Recv "m_Press") ~resets:[ "x" ] "Off" "Switching";
        edge ~guard:[ Clockcons.ge "x" 10 ] ~sync:(Model.Send "c_On")
          "Switching" "On" ]
  in
  let user =
    Model.automaton ~name:"User" ~initial:"Idle"
      [ loc "Idle"; loc "Waiting"; loc "Happy" ]
      [ edge ~sync:(Model.Send "m_Press") "Idle" "Waiting";
        edge ~sync:(Model.Recv "c_On") "Waiting" "Happy" ]
  in
  let net =
    Model.network ~name:"lamp" ~clocks:[ "x" ] ~vars:[]
      ~channels:[ ("m_Press", Model.Broadcast); ("c_On", Model.Broadcast) ]
      [ controller; user ]
  in
  Transform.Pim.make net ~software:"Controller" ~environment:"User"

let scheme ?(input = Scheme.interrupt_input (Scheme.delay 1 3))
    ?(buffer = 2) ?(invocation = Scheme.Periodic 20) () =
  { Scheme.is_name = "sim-test";
    is_inputs = [ ("m_Press", input) ];
    is_outputs = [ ("c_On", Scheme.pulse_output (Scheme.delay 2 5)) ];
    is_input_comm = Scheme.Buffer (buffer, Scheme.Read_all);
    is_output_comm = Scheme.Buffer (buffer, Scheme.Read_all);
    is_invocation = invocation;
    is_exec = { Scheme.wcet_min = 1; wcet_max = 5 } }

let fixed_typical =
  { Sim.Engine.typ_input_proc = (fun _ -> (2.0, 2.0));
    typ_output_proc = (fun _ -> (3.0, 3.0));
    typ_exec = (1.0, 1.0) }

let config ?(scheme = scheme ()) ?(stimuli = [ (7.0, "m_Press") ])
    ?(horizon = 500.0) () =
  { Sim.Engine.cfg_pim = lamp_pim ();
    cfg_scheme = scheme;
    cfg_typical = fixed_typical;
    cfg_stimuli = stimuli;
    cfg_horizon = horizon }

let times_of log select =
  List.filter_map
    (fun (e : Sim.Engine.entry) ->
      if select e.Sim.Engine.event then Some e.Sim.Engine.at else None)
    log

let test_determinism () =
  let log1 = Sim.Engine.run ~seed:3 (config ()) in
  let log2 = Sim.Engine.run ~seed:3 (config ()) in
  Alcotest.(check bool) "same seed, same log" true (log1 = log2);
  let log3 = Sim.Engine.run ~seed:4 (config ()) in
  Alcotest.(check bool) "logs are non-empty" true (log1 <> []);
  (* different seed changes at least the random draws' timestamps *)
  ignore log3

let test_happy_path_timeline () =
  (* Fixed delays make the exact timeline computable by hand:
     press at 7, interrupt processing 2 -> inserted at 9;
     invocations at 20, 40, ...: read at 20; guard x >= 10 satisfied at
     invocation 40 (x = 20): emit; window end 41: publish; output
     processing 3 -> visible at 44. *)
  let log = Sim.Engine.run ~seed:1 (config ()) in
  let one select = times_of log select in
  Alcotest.(check (list (float 0.001))) "inserted" [ 9.0 ]
    (one (fun e -> e = Sim.Engine.Input_inserted "m_Press"));
  Alcotest.(check (list (float 0.001))) "read" [ 20.0 ]
    (one (fun e -> e = Sim.Engine.Input_read "m_Press"));
  Alcotest.(check (list (float 0.001))) "emitted" [ 40.0 ]
    (one (fun e -> e = Sim.Engine.Code_output "c_On"));
  Alcotest.(check (list (float 0.001))) "visible" [ 44.0 ]
    (one (fun e -> e = Sim.Engine.Output_visible "c_On"))

let test_interrupt_miss () =
  (* Second press lands while the handler is busy (processing takes 2). *)
  let log =
    Sim.Engine.run ~seed:1
      (config ~stimuli:[ (7.0, "m_Press"); (8.0, "m_Press") ] ())
  in
  Alcotest.(check int) "one loss" 1
    (Sim.Measure.count log (fun e -> e = Sim.Engine.Input_lost "m_Press"))

let test_polling_detection_latency () =
  let input = Scheme.polling_input ~interval:10 (Scheme.delay 1 1) in
  let typical =
    { fixed_typical with Sim.Engine.typ_input_proc = (fun _ -> (1.0, 1.0)) }
  in
  let cfg =
    { (config ~scheme:(scheme ~input ()) ()) with
      Sim.Engine.cfg_typical = typical;
      cfg_stimuli = [ (11.0, "m_Press") ] }
  in
  let log = Sim.Engine.run ~seed:1 cfg in
  (* polls at 10, 20...: signal at 11 picked up at 20, inserted at 21 *)
  Alcotest.(check (list (float 0.001))) "inserted after next poll" [ 21.0 ]
    (times_of log (fun e -> e = Sim.Engine.Input_inserted "m_Press"))

let test_buffer_overflow_in_sim () =
  (* Buffer of 1, three quick presses, slow period: the third processed
     input finds the slot full (the second is missed by the busy
     handler). *)
  let cfg =
    config
      ~scheme:(scheme ~buffer:1 ~invocation:(Scheme.Periodic 100) ())
      ~stimuli:[ (7.0, "m_Press"); (12.0, "m_Press"); (17.0, "m_Press") ]
      ()
  in
  let log = Sim.Engine.run ~seed:1 cfg in
  Alcotest.(check bool) "an input is lost" true
    (Sim.Measure.count log (function
       | Sim.Engine.Input_lost _ -> true
       | _ -> false)
     > 0)

let test_aperiodic_invokes_on_insert () =
  let cfg =
    config ~scheme:(scheme ~invocation:(Scheme.Aperiodic 0) ()) ()
  in
  let log = Sim.Engine.run ~seed:1 cfg in
  (* inserted at 9, read immediately at 9 (no wait for a period) *)
  Alcotest.(check (list (float 0.001))) "read at insertion" [ 9.0 ]
    (times_of log (fun e -> e = Sim.Engine.Input_read "m_Press"))

let test_discard_when_not_enabled () =
  (* Two presses far apart: the second is read while the controller is
     already Switching/On, so the code discards it. *)
  let cfg =
    config
      ~stimuli:[ (7.0, "m_Press"); (100.0, "m_Press") ]
      ()
  in
  let log = Sim.Engine.run ~seed:1 cfg in
  Alcotest.(check int) "one discard" 1
    (Sim.Measure.count log (fun e -> e = Sim.Engine.Input_discarded "m_Press"))

let test_measure_samples () =
  let log = Sim.Engine.run ~seed:1 (config ()) in
  match Sim.Measure.samples log ~trigger:"m_Press" ~response:"c_On" with
  | [ s ] ->
    Alcotest.(check (option (float 0.001))) "mc delay" (Some 37.0)
      (Sim.Measure.mc_delay s);
    Alcotest.(check (option (float 0.001))) "input delay" (Some 13.0)
      (Sim.Measure.input_delay s);
    Alcotest.(check (option (float 0.001))) "output delay" (Some 4.0)
      (Sim.Measure.output_delay s)
  | samples -> Alcotest.failf "expected one sample, got %d" (List.length samples)

let test_stats () =
  (match Sim.Measure.stats_of [ 1.0; 5.0; 3.0 ] with
   | Some s ->
     Alcotest.(check (float 0.001)) "avg" 3.0 s.Sim.Measure.st_avg;
     Alcotest.(check (float 0.001)) "max" 5.0 s.Sim.Measure.st_max;
     Alcotest.(check (float 0.001)) "min" 1.0 s.Sim.Measure.st_min;
     Alcotest.(check int) "count" 3 s.Sim.Measure.st_count
   | None -> Alcotest.fail "stats of non-empty list");
  Alcotest.(check bool) "empty" true (Sim.Measure.stats_of [] = None)

let test_rng_properties () =
  let rng = Sim.Rng.create 99 in
  let all_in_range = ref true in
  for _ = 1 to 1000 do
    let v = Sim.Rng.float_range rng 2.0 5.0 in
    if not (v >= 2.0 && v < 5.0) then all_in_range := false;
    let n = Sim.Rng.int_range rng 1 6 in
    if n < 1 || n > 6 then all_in_range := false
  done;
  Alcotest.(check bool) "ranges respected" true !all_in_range;
  let a = Sim.Rng.create 5 and b = Sim.Rng.create 5 in
  Alcotest.(check (float 0.0)) "deterministic" (Sim.Rng.float01 a)
    (Sim.Rng.float01 b);
  let s1 = Sim.Rng.split a in
  Alcotest.(check bool) "split diverges" true
    (Sim.Rng.float01 s1 <> Sim.Rng.float01 a)

let test_event_queue_order () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q 3.0 "c";
  Sim.Event_queue.push q 1.0 "a";
  Sim.Event_queue.push q 1.0 "b";  (* FIFO at equal times *)
  Sim.Event_queue.push q 2.0 "m";
  let order = ref [] in
  let rec drain () =
    match Sim.Event_queue.pop q with
    | Some (_, x) ->
      order := x :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time then FIFO order" [ "a"; "b"; "m"; "c" ]
    (List.rev !order)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in time order" ~count:300
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_int))
    (fun events ->
      let q = Sim.Event_queue.create () in
      List.iter (fun (t, v) -> Sim.Event_queue.push q t v) events;
      let rec drain last acc =
        match Sim.Event_queue.pop q with
        | Some (t, _) ->
          if t < last then false else drain t (acc + 1)
        | None -> acc = List.length events
      in
      drain neg_infinity 0)

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "happy-path timeline" `Quick test_happy_path_timeline;
    Alcotest.test_case "interrupt miss" `Quick test_interrupt_miss;
    Alcotest.test_case "polling detection latency" `Quick
      test_polling_detection_latency;
    Alcotest.test_case "buffer overflow" `Quick test_buffer_overflow_in_sim;
    Alcotest.test_case "aperiodic invocation" `Quick
      test_aperiodic_invokes_on_insert;
    Alcotest.test_case "discard when not enabled" `Quick
      test_discard_when_not_enabled;
    Alcotest.test_case "measurement samples" `Quick test_measure_samples;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "rng" `Quick test_rng_properties;
    Alcotest.test_case "event queue order" `Quick test_event_queue_order;
    QCheck_alcotest.to_alcotest prop_event_queue_sorted ]
