(* psv — command-line front end to the platform-specific timing
   verification framework.

   Subcommands:
     table1     reproduce Table I of the paper (verify + simulate)
     verify     check or measure a response bound on a .xta model
     transform  build the PSM of a .xta PIM under a scheme
     bounds     print the analytic Lemma-1/2 bounds of a scheme
     simulate   run the platform simulator on the GPCA case study
     export     write the GPCA PIM / PSM as .xta text *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let write_out output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc

let load_network path =
  match Xta.Parse.network (read_file path) with
  | Ok net -> net
  | Error msg -> Fmt.failwith "%s: %s" path msg

(* --- scheme construction from CLI options ----------------------------- *)

(* input spec syntax:  CHAN:interrupt:DMIN:DMAX
                    or CHAN:polling:INTERVAL:DMIN:DMAX *)
let parse_input_spec s =
  match String.split_on_char ':' s with
  | [ chan; "interrupt"; dmin; dmax ] ->
    (chan,
     Scheme.interrupt_input
       (Scheme.delay (int_of_string dmin) (int_of_string dmax)))
  | [ chan; "polling"; interval; dmin; dmax ] ->
    (chan,
     Scheme.polling_input ~interval:(int_of_string interval)
       (Scheme.delay (int_of_string dmin) (int_of_string dmax)))
  | _ ->
    Fmt.failwith
      "bad --input %S (want CHAN:interrupt:DMIN:DMAX or \
       CHAN:polling:INTERVAL:DMIN:DMAX)"
      s

(* output spec syntax: CHAN:DMIN:DMAX *)
let parse_output_spec s =
  match String.split_on_char ':' s with
  | [ chan; dmin; dmax ] ->
    (chan, Scheme.pulse_output (Scheme.delay (int_of_string dmin) (int_of_string dmax)))
  | _ -> Fmt.failwith "bad --output %S (want CHAN:DMIN:DMAX)" s

let parse_wcet s =
  match String.split_on_char ':' s with
  | [ lo; hi ] -> { Scheme.wcet_min = int_of_string lo; wcet_max = int_of_string hi }
  | _ -> Fmt.failwith "bad --wcet %S (want MIN:MAX)" s

let scheme_of_options ~inputs ~outputs ~period ~aperiodic_gap ~buffer ~shared
    ~read_one ~wcet =
  let invocation =
    match period, aperiodic_gap with
    | Some p, None -> Scheme.Periodic p
    | None, Some g -> Scheme.Aperiodic g
    | None, None -> Scheme.Periodic 100
    | Some _, Some _ -> Fmt.failwith "--period and --aperiodic are exclusive"
  in
  let comm =
    if shared then Scheme.Shared_variable
    else
      Scheme.Buffer
        (buffer, if read_one then Scheme.Read_one else Scheme.Read_all)
  in
  { Scheme.is_name = "cli";
    is_inputs = List.map parse_input_spec inputs;
    is_outputs = List.map parse_output_spec outputs;
    is_input_comm = comm;
    is_output_comm = comm;
    is_invocation = invocation;
    is_exec = wcet }

(* --- common arguments -------------------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let scenarios_arg =
  Arg.(value & opt int 60
       & info [ "scenarios" ] ~docv:"N" ~doc:"Number of simulated scenarios.")

let output_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")

(* --- table1 ------------------------------------------------------------ *)

let table1_cmd =
  let run seed scenarios =
    let t = Gpca.Experiment.table1 ~scenarios ~seed Gpca.Params.default in
    Fmt.pr "%a@." Gpca.Experiment.pp_table1 t
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table I: verified PSM bounds vs simulated measurements.")
    Term.(const run $ seed_arg $ scenarios_arg)

(* --- verify ------------------------------------------------------------ *)

let verify_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model to verify.")
  in
  let trigger =
    Arg.(required & opt (some string) None
         & info [ "trigger" ] ~docv:"CHAN" ~doc:"Triggering synchronisation.")
  in
  let response =
    Arg.(required & opt (some string) None
         & info [ "response" ] ~docv:"CHAN" ~doc:"Responding synchronisation.")
  in
  let bound =
    Arg.(value & opt (some int) None
         & info [ "bound" ] ~docv:"N" ~doc:"Check the response bound P($(docv)).")
  in
  let ceiling =
    Arg.(value & opt int 10_000
         & info [ "ceiling" ] ~docv:"N" ~doc:"Sup-query ceiling.")
  in
  let run file trigger response bound ceiling =
    let net = load_network file in
    match bound with
    | Some b ->
      let ok =
        Psv.verify_response net ~trigger ~response ~bound:b
      in
      Fmt.pr "P(%d) %s -> %s: %s@." b trigger response
        (if ok then "SATISFIED" else "VIOLATED");
      if not ok then exit 1
    | None ->
      let r = Psv.max_delay net ~trigger ~response ~ceiling in
      Fmt.pr "%a@." Analysis.Queries.pp_delay_result r
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a bounded-response requirement, or compute the maximum delay.")
    Term.(const run $ file $ trigger $ response $ bound $ ceiling)

(* --- query ---------------------------------------------------------------- *)

let query_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model to query.")
  in
  let query =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"QUERY"
             ~doc:"E<> PRED | A[] PRED | sup: CHAN -> CHAN [ceiling N] | \
                   bounded: CHAN -> CHAN within N")
  in
  let run file query =
    let net = load_network file in
    match Mc.Query.parse query with
    | Error msg -> Fmt.failwith "query: %s" msg
    | Ok q ->
      let outcome =
        try Mc.Query.eval net q
        with Not_found ->
          Fmt.failwith
            "query names an unknown process, location or variable"
      in
      Fmt.pr "%a@." Mc.Query.pp_outcome outcome;
      (match outcome with
       | Mc.Query.Fails (Some trace) ->
         Fmt.pr "@[<v 2>counterexample:@,%a@]@."
           Fmt.(list ~sep:cut string)
           trace
       | Mc.Query.Fails None | Mc.Query.Holds | Mc.Query.Sup _ -> ());
      (match outcome with
       | Mc.Query.Fails _ -> exit 1
       | Mc.Query.Holds | Mc.Query.Sup _ -> ())
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an UPPAAL-style query on a .xta model.")
    Term.(const run $ file $ query)

(* --- check (batch queries) -------------------------------------------------- *)

let check_cmd =
  let model =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model to check.")
  in
  let queries =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"QUERIES.q"
             ~doc:"Query file: one query per line; blank lines and lines \
                   starting with # are skipped.")
  in
  let run model queries =
    let net = load_network model in
    let lines = String.split_on_char '\n' (read_file queries) in
    let failures = ref 0 and total = ref 0 in
    List.iteri
      (fun lineno line ->
        let line = String.trim line in
        if line <> "" && line.[0] <> '#' then begin
          incr total;
          match Mc.Query.parse line with
          | Error msg ->
            incr failures;
            Fmt.pr "%3d  ERROR  %s@.     %s@." (lineno + 1) line msg
          | Ok q ->
            (match Mc.Query.eval net q with
             | outcome ->
               let failed =
                 match outcome with
                 | Mc.Query.Fails _ -> true
                 | Mc.Query.Holds | Mc.Query.Sup _ -> false
               in
               if failed then incr failures;
               Fmt.pr "%3d  %-5s  %s  [%a]@." (lineno + 1)
                 (if failed then "FAIL" else "pass")
                 line Mc.Query.pp_outcome outcome
             | exception Not_found ->
               incr failures;
               Fmt.pr "%3d  ERROR  %s@.     unknown process, location or \
                       variable@." (lineno + 1) line)
        end)
      lines;
    Fmt.pr "@.%d quer%s, %d failure%s@." !total
      (if !total = 1 then "y" else "ies")
      !failures
      (if !failures = 1 then "" else "s");
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run a file of queries against a model (verifyta-style).")
    Term.(const run $ model $ queries)

(* --- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model to search.")
  in
  let target =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"PRED"
             ~doc:"Target predicate, e.g. 'Pump.Infusing' or 'iovf_BolusReq == 1'.")
  in
  let run file target =
    let net = load_network file in
    match Mc.Query.parse ("E<> " ^ target) with
    | Error msg -> Fmt.failwith "predicate: %s" msg
    | Ok (Mc.Query.Exists_eventually p) ->
      let t = Mc.Explorer.make net in
      let pred =
        try Mc.Query.compile_pred t p
        with Not_found ->
          Fmt.failwith "predicate names an unknown process, location or variable"
      in
      (match Mc.Explorer.timed_trace t pred with
       | Some steps ->
         List.iter (Fmt.pr "%a@." Mc.Explorer.pp_timed_step) steps
       | None ->
         Fmt.pr "unreachable@.";
         exit 1)
    | Ok _ -> assert false
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a timed witness trace reaching a state predicate.")
    Term.(const run $ file $ target)

(* --- transform ---------------------------------------------------------- *)

let transform_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"PIM.xta" ~doc:"Platform-independent model.")
  in
  let software =
    Arg.(required & opt (some string) None
         & info [ "software" ] ~docv:"NAME" ~doc:"The software automaton (M).")
  in
  let environment =
    Arg.(required & opt (some string) None
         & info [ "environment" ] ~docv:"NAME" ~doc:"The environment automaton (ENV).")
  in
  let inputs =
    Arg.(value & opt_all string []
         & info [ "input" ] ~docv:"SPEC"
             ~doc:"Input device spec: CHAN:interrupt:DMIN:DMAX or \
                   CHAN:polling:INTERVAL:DMIN:DMAX.  Repeatable.")
  in
  let outputs =
    Arg.(value & opt_all string []
         & info [ "output-dev" ] ~docv:"SPEC"
             ~doc:"Output device spec: CHAN:DMIN:DMAX.  Repeatable.")
  in
  let period =
    Arg.(value & opt (some int) None
         & info [ "period" ] ~docv:"N" ~doc:"Periodic invocation period.")
  in
  let aperiodic =
    Arg.(value & opt (some int) None
         & info [ "aperiodic" ] ~docv:"GAP" ~doc:"Aperiodic invocation with minimum gap.")
  in
  let buffer =
    Arg.(value & opt int 5 & info [ "buffer" ] ~docv:"N" ~doc:"Buffer capacity.")
  in
  let shared =
    Arg.(value & flag & info [ "shared" ] ~doc:"Shared-variable communication.")
  in
  let read_one =
    Arg.(value & flag & info [ "read-one" ] ~doc:"Read-one policy (default read-all).")
  in
  let wcet =
    Arg.(value & opt string "1:10" & info [ "wcet" ] ~docv:"MIN:MAX" ~doc:"Execution window.")
  in
  let run file software environment inputs outputs period aperiodic buffer
      shared read_one wcet out =
    let net = load_network file in
    let pim = Transform.Pim.make net ~software ~environment in
    let scheme =
      scheme_of_options ~inputs ~outputs ~period ~aperiodic_gap:aperiodic
        ~buffer ~shared ~read_one ~wcet:(parse_wcet wcet)
    in
    let psm = Transform.psm_of_pim pim scheme in
    write_out out (Xta.Print.to_string psm.Transform.psm_net)
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Transform a PIM into the PSM of an implementation scheme.")
    Term.(const run $ file $ software $ environment $ inputs $ outputs
          $ period $ aperiodic $ buffer $ shared $ read_one $ wcet
          $ output_arg)

(* --- bounds ------------------------------------------------------------- *)

let bounds_cmd =
  let run () =
    let p = Gpca.Params.default in
    let a = Gpca.Experiment.analytic_bounds p in
    Fmt.pr
      "@[<v>Analytic bounds of the GPCA case study (Lemmas 1 and 2):@,\
       Input-Delay  (bolus request -> code read):        %d ms@,\
       Output-Delay (code output -> infusion visible):   %d ms@,\
       Internal     (PIM bound on request -> start):     %d ms@,\
       Relaxed M-C bound Delta'mc:                       %d ms@]@."
      a.Gpca.Experiment.a_input a.Gpca.Experiment.a_output
      a.Gpca.Experiment.a_internal a.Gpca.Experiment.a_mc
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the analytic Lemma-1/2 bounds (GPCA parameters).")
    Term.(const run $ const ())

(* --- simulate ------------------------------------------------------------ *)

let simulate_cmd =
  let run seed scenarios =
    let m = Gpca.Experiment.measure ~scenarios ~seed Gpca.Params.default in
    Fmt.pr
      "@[<v>Simulated implementation, %d bolus scenarios (seed %d):@,\
       M-C delay:    %a@,Input delay:  %a@,Output delay: %a@,\
       losses: %d, REQ1 violations: %d@]@."
      m.Gpca.Experiment.m_scenarios seed Sim.Measure.pp_stats
      m.Gpca.Experiment.m_mc Sim.Measure.pp_stats m.Gpca.Experiment.m_input
      Sim.Measure.pp_stats m.Gpca.Experiment.m_output
      m.Gpca.Experiment.m_losses m.Gpca.Experiment.m_req1_violations
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the simulated GPCA implementation and measure delays.")
    Term.(const run $ seed_arg $ scenarios_arg)

(* --- codegen ----------------------------------------------------------------- *)

let codegen_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"PIM.xta" ~doc:"Platform-independent model.")
  in
  let software =
    Arg.(required & opt (some string) None
         & info [ "software" ] ~docv:"NAME" ~doc:"The software automaton (M).")
  in
  let environment =
    Arg.(required & opt (some string) None
         & info [ "environment" ] ~docv:"NAME" ~doc:"The environment automaton (ENV).")
  in
  let directory =
    Arg.(value & opt string "."
         & info [ "d"; "directory" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let with_harness =
    Arg.(value & flag
         & info [ "harness" ] ~doc:"Also emit the stdin-driven test harness (main.c).")
  in
  let run file software environment directory with_harness =
    let net = load_network file in
    let pim = Transform.Pim.make net ~software ~environment in
    let prefix = Codegen.prefix pim in
    let write name text =
      let path = Filename.concat directory name in
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Fmt.pr "wrote %s@." path
    in
    write (prefix ^ ".h") (Codegen.emit_header pim);
    write (prefix ^ ".c") (Codegen.emit_source pim);
    if with_harness then write "main.c" (Codegen.emit_harness pim)
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Generate C code for the software automaton (the TIMES step).")
    Term.(const run $ file $ software $ environment $ directory $ with_harness)

(* --- export ------------------------------------------------------------- *)

let export_cmd =
  let psm_flag =
    Arg.(value & flag & info [ "psm" ] ~doc:"Export the transformed PSM instead of the PIM.")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ] ~doc:"Include the empty-syringe alarm path.")
  in
  let uppaal =
    Arg.(value & flag
         & info [ "uppaal" ] ~doc:"Emit UPPAAL XML instead of .xta text.")
  in
  let run psm_flag full uppaal out =
    let p = Gpca.Params.default in
    let variant = if full then Gpca.Model.Full else Gpca.Model.Bolus_only in
    let net =
      if psm_flag then (Gpca.Model.psm ~variant p).Transform.psm_net
      else Gpca.Model.network ~variant p
    in
    let text =
      if uppaal then Xta.Uppaal_xml.to_string net else Xta.Print.to_string net
    in
    write_out out text
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write the GPCA PIM or PSM as .xta text or UPPAAL XML.")
    Term.(const run $ psm_flag $ full $ uppaal $ output_arg)

let main =
  Cmd.group
    (Cmd.info "psv" ~version:"1.0.0"
       ~doc:"Platform-specific timing verification in model-based implementation.")
    [ table1_cmd; verify_cmd; query_cmd; check_cmd; trace_cmd; transform_cmd;
      codegen_cmd; bounds_cmd; simulate_cmd;
      export_cmd ]

let () = exit (Cmd.eval main)
