examples/buffer_overrun.ml: Analysis Clockcons Fmt List Mc Model Scheme Ta Transform
