examples/railroad.mli:
