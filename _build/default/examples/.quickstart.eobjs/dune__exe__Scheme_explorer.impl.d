examples/scheme_explorer.ml: Analysis Fmt Gpca List Mc Psv Scheme Transform
