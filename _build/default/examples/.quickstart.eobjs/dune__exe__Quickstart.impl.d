examples/quickstart.ml: Analysis Clockcons Fmt List Mc Model Psv Scheme Sim Ta Transform
