examples/buffer_overrun.mli:
