examples/quickstart.mli:
