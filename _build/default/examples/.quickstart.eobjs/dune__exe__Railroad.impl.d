examples/railroad.ml: Analysis Clockcons Fmt Fun List Mc Model Psv Scheme Sim Ta Transform
