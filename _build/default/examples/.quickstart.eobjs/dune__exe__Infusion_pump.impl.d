examples/infusion_pump.ml: Analysis Fmt Gpca List Psv Scheme Sim Transform
