(* The scenario Section III calls out as beyond prior frameworks:

     "Although a platform successfully detects an input from the
      environment, the platform-independent code may not be able to
      receive it due to a buffer overrun."

   A bursty environment emits three pulses 5 ms apart.  The interrupt
   handler detects all of them, but with a 1-slot io-buffer and a 50 ms
   periodic executive, the second processed input finds the slot full
   and is lost - Constraint 2 is violated, found by model checking with
   a witness trace.  Growing the buffer, or invoking the code
   aperiodically (on insertion), repairs the scheme.

   Run with: dune exec examples/buffer_overrun.exe *)

open Ta

let loc = Model.location
let edge = Model.edge

(* Software that counts three events, then reports done. *)
let counter =
  Model.automaton ~name:"Counter" ~initial:"Zero"
    [ loc "Zero"; loc "One"; loc "Two"; loc "Done" ]
    [ edge ~sync:(Model.Recv "m_Tick") "Zero" "One";
      edge ~sync:(Model.Recv "m_Tick") "One" "Two";
      edge ~sync:(Model.Recv "m_Tick") ~resets:[ "x" ] "Two" "Report";
      edge ~guard:[ Clockcons.le "x" 10 ] ~sync:(Model.Send "c_Done")
        "Report" "Done" ]
  |> fun a ->
  { a with
    Model.aut_locations =
      a.Model.aut_locations
      @ [ loc ~inv:[ Clockcons.le "x" 10 ] "Report" ] }

(* A burst of three pulses, 5 ms apart. *)
let burst =
  Model.automaton ~name:"Burst" ~initial:"B0"
    [ loc ~inv:[ Clockcons.le "b" 0 ] "B0";
      loc ~inv:[ Clockcons.le "b" 5 ] "B1";
      loc ~inv:[ Clockcons.le "b" 5 ] "B2";
      loc "Sent"; loc "Acked" ]
    [ edge ~sync:(Model.Send "m_Tick") ~resets:[ "b" ] "B0" "B1";
      edge ~guard:[ Clockcons.eq_ "b" 5 ] ~sync:(Model.Send "m_Tick")
        ~resets:[ "b" ] "B1" "B2";
      edge ~guard:[ Clockcons.eq_ "b" 5 ] ~sync:(Model.Send "m_Tick") "B2"
        "Sent";
      edge ~sync:(Model.Recv "c_Done") "Sent" "Acked" ]

let pim_net =
  Model.network ~name:"burst-counter" ~clocks:[ "x"; "b" ] ~vars:[]
    ~channels:[ ("m_Tick", Model.Broadcast); ("c_Done", Model.Broadcast) ]
    [ counter; burst ]

let pim = Transform.Pim.make pim_net ~software:"Counter" ~environment:"Burst"

let scheme ~buffer ~invocation =
  { Scheme.is_name = "burst-platform";
    is_inputs = [ ("m_Tick", Scheme.interrupt_input (Scheme.delay 1 2)) ];
    is_outputs = [ ("c_Done", Scheme.pulse_output (Scheme.delay 1 2)) ];
    is_input_comm = Scheme.Buffer (buffer, Scheme.Read_all);
    is_output_comm = Scheme.Buffer (2, Scheme.Read_all);
    is_invocation = invocation;
    is_exec = { Scheme.wcet_min = 1; wcet_max = 5 } }

let report label s =
  let psm = Transform.psm_of_pim pim s in
  let results = Analysis.Constraints.check_all psm in
  Fmt.pr "@[<v>-- %s --@," label;
  List.iter (fun r -> Fmt.pr "%a@," Analysis.Constraints.pp_result r) results;
  (* Does every burst eventually get counted?  Reachability of the
     acknowledged state under the scheme. *)
  let t = Mc.Explorer.make psm.Transform.psm_net in
  let acked = Mc.Explorer.at t ~aut:"Burst" ~loc:"Acked" in
  let done_reachable = (Mc.Explorer.reachable t acked).Mc.Explorer.r_trace in
  Fmt.pr "all three ticks counted: %s@,@]"
    (match done_reachable with
     | Some _ -> "possible"
     | None -> "IMPOSSIBLE (an input was lost in every run)");
  (match
     List.find_opt
       (fun (r : Analysis.Constraints.result) ->
         match r.Analysis.Constraints.c_status with
         | Analysis.Constraints.Violated _ -> true
         | Analysis.Constraints.Satisfied | Analysis.Constraints.Unknown _ ->
           false)
       results
   with
   | Some { Analysis.Constraints.c_status = Analysis.Constraints.Violated trace; _ } ->
     Fmt.pr "@[<v 2>witness of the loss:@,%a@]@."
       Fmt.(list ~sep:cut string)
       trace
   | Some _ | None -> Fmt.pr "@.")

let () =
  report "1-slot buffer, periodic(50): the overrun the paper describes"
    (scheme ~buffer:1 ~invocation:(Scheme.Periodic 50));
  report "3-slot buffer, periodic(50): repaired by capacity"
    (scheme ~buffer:3 ~invocation:(Scheme.Periodic 50));
  report "1-slot buffer, aperiodic(0): repaired by eager invocation"
    (scheme ~buffer:1 ~invocation:(Scheme.Aperiodic 0))
