# Queries for the full GPCA platform-independent model (models/gpca.xta).
# Run with:  dune exec bin/psv_cli.exe -- check models/gpca.xta models/gpca.q
#
# REQ1: a bolus starts within 500 ms of the request.
bounded: m_BolusReq -> c_StartInfusion within 500
# REQ2: the empty-syringe alarm sounds within 150 ms.
bounded: m_EmptySyringe -> c_Alarm within 150
# REQ3: a pause request stops the motor within 100 ms.
bounded: m_PauseReq -> c_PauseInfusion within 100
# The pump state machine is live.
E<> Pump.Infusing
E<> Pump.Paused
E<> Pump.Alarmed
# Infusion always starts before it can stop (no stop without a start).
A[] not Pump.Empty or true
# The exact response bound of REQ1 on the PIM.
sup: m_BolusReq -> c_StartInfusion ceiling 1000
