(* psv — command-line front end to the platform-specific timing
   verification framework.

   Subcommands:
     table1         reproduce Table I of the paper (verify + simulate)
     verify         check or measure a response bound on a .xta model
     transform      build the PSM of a .xta PIM under a scheme
     bounds         print the analytic Lemma-1/2 bounds of a scheme
     sweep-schemes  grid sweep of implementation schemes, analytic
                    prefilter racing the zone explorer per point
     sweep          period sweep — thin alias over the same engine
     simulate       run the platform simulator on the GPCA case study
     export         write the GPCA PIM / PSM as .xta text

   Exit codes (verify/query/check):
     0  property proved / query holds / all queries pass
     1  property refuted
     2  unknown — a budget or ^C interrupted the search
     3  usage, parse or I/O error *)

open Cmdliner

(* usage, parse and I/O errors all leave through here: exit 3 is
   distinguishable from a refutation (1) and an interrupted search (2) *)
let die fmt = Fmt.kstr (fun msg -> Fmt.epr "psv: %s@." msg; exit 3) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> die "%s" msg

let write_out output text =
  match output with
  | None -> print_string text
  | Some path -> (
    try
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text)
    with Sys_error msg -> die "%s" msg)

let load_network path =
  match Xta.Parse.network (read_file path) with
  | Ok net -> net
  | Error msg -> die "%s: %s" path msg

(* --- scheme construction from CLI options ----------------------------- *)

(* [int_field] names both the malformed field and the whole spec, so a
   typo inside a repeated --input is traceable to the offending flag *)
let int_field ~flag ~spec ~field s =
  match int_of_string_opt (String.trim s) with
  | Some n -> n
  | None ->
    die "bad %s %S: field %s is %S, expected an integer" flag spec field s

(* input spec syntax:  CHAN:interrupt:DMIN:DMAX
                    or CHAN:polling:INTERVAL:DMIN:DMAX *)
let parse_input_spec spec =
  let int = int_field ~flag:"--input" ~spec in
  match String.split_on_char ':' spec with
  | [ chan; "interrupt"; dmin; dmax ] ->
    (chan,
     Scheme.interrupt_input
       (Scheme.delay (int ~field:"DMIN" dmin) (int ~field:"DMAX" dmax)))
  | [ chan; "polling"; interval; dmin; dmax ] ->
    (chan,
     Scheme.polling_input ~interval:(int ~field:"INTERVAL" interval)
       (Scheme.delay (int ~field:"DMIN" dmin) (int ~field:"DMAX" dmax)))
  | _ ->
    die
      "bad --input %S (want CHAN:interrupt:DMIN:DMAX or \
       CHAN:polling:INTERVAL:DMIN:DMAX)"
      spec

(* output spec syntax: CHAN:DMIN:DMAX *)
let parse_output_spec spec =
  let int = int_field ~flag:"--output-dev" ~spec in
  match String.split_on_char ':' spec with
  | [ chan; dmin; dmax ] ->
    (chan,
     Scheme.pulse_output
       (Scheme.delay (int ~field:"DMIN" dmin) (int ~field:"DMAX" dmax)))
  | _ -> die "bad --output-dev %S (want CHAN:DMIN:DMAX)" spec

let parse_wcet spec =
  let int = int_field ~flag:"--wcet" ~spec in
  match String.split_on_char ':' spec with
  | [ lo; hi ] ->
    { Scheme.wcet_min = int ~field:"MIN" lo; wcet_max = int ~field:"MAX" hi }
  | _ -> die "bad --wcet %S (want MIN:MAX)" spec

let scheme_of_options ~inputs ~outputs ~period ~aperiodic_gap ~buffer ~shared
    ~read_one ~wcet =
  let invocation =
    match period, aperiodic_gap with
    | Some p, None -> Scheme.Periodic p
    | None, Some g -> Scheme.Aperiodic g
    | None, None -> Scheme.Periodic 100
    | Some _, Some _ -> die "--period and --aperiodic are exclusive"
  in
  let comm =
    if shared then Scheme.Shared_variable
    else
      Scheme.Buffer
        (buffer, if read_one then Scheme.Read_one else Scheme.Read_all)
  in
  { Scheme.is_name = "cli";
    is_inputs = List.map parse_input_spec inputs;
    is_outputs = List.map parse_output_spec outputs;
    is_input_comm = comm;
    is_output_comm = comm;
    is_invocation = invocation;
    is_exec = wcet }

(* --- run governance ---------------------------------------------------- *)

let budget_time_arg =
  Arg.(value & opt (some string) None
       & info [ "budget-time" ] ~docv:"DUR"
           ~doc:"Wall-clock budget (e.g. 500ms, 2s, 5m, 1h; bare numbers \
                 are seconds).  On exhaustion the search stops with an \
                 $(i,unknown) verdict, exit code 2.")

let budget_states_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-states" ] ~docv:"N"
           ~doc:"Visited-state budget; exceeded means verdict \
                 $(i,unknown), exit code 2.")

let budget_mem_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-mem" ] ~docv:"MB"
           ~doc:"Live-heap budget in megabytes (sampled); exceeded means \
                 verdict $(i,unknown), exit code 2.")

let make_budget ~time ~states ~mem =
  let b_time_s =
    Option.map
      (fun s ->
        match Mc.Runctl.parse_duration s with
        | Ok v -> v
        | Error msg -> die "bad --budget-time %S: %s" s msg)
      time
  in
  { Mc.Runctl.b_time_s;
    b_states = states;
    b_mem_bytes = Option.map (fun mb -> mb * 1024 * 1024) mem }

(* one govern token per run: budgets plus first-^C-cancels.  The wall
   clock starts here, so build the token right before the search. *)
let make_ctl ~time ~states ~mem =
  let ctl = Mc.Runctl.create ~budget:(make_budget ~time ~states ~mem) () in
  Mc.Runctl.install_sigint ctl;
  ctl

(* for batch runs: fresh tokens (each query gets the full budget) but a
   single ^C cancels the whole fleet *)
let install_sigint_all ctls =
  try
    ignore
      (Sys.signal Sys.sigint
         (Sys.Signal_handle (fun _ -> List.iter Mc.Runctl.cancel ctls)))
  with Invalid_argument _ | Sys_error _ -> ()

let load_resume path =
  match Mc.Explorer.load_snapshot path with
  | Ok snap -> snap
  | Error msg -> die "cannot resume from %s: %s" path msg

(* --- common arguments -------------------------------------------------- *)

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Explore with $(docv) worker domains (default 1, the \
                 sequential explorer; 0 means one per available core).  \
                 Values above the host's core count are clamped with a \
                 warning — oversubscribed domains only add contention.  \
                 Verdicts and sup values are identical for every \
                 $(docv); visited/stored counts may differ with \
                 $(docv) > 1.")

(* More worker domains than cores is never faster — OCaml domains are
   not green threads — so a too-large --jobs silently recording
   worse-than-sequential numbers (as single-core hosts used to) is
   treated as a spelling of "all cores", with a warning. *)
let check_jobs n =
  if n < 0 then die "--jobs must be at least 1 (or 0 for one per core)"
  else begin
    let avail = Mc.Parsearch.recommended_jobs () in
    if n = 0 then avail
    else if n > avail then begin
      Fmt.epr
        "psv: --jobs %d exceeds this host's %d available core%s; using %d@."
        n avail
        (if avail = 1 then "" else "s")
        avail;
      avail
    end
    else n
  end

let cache_arg =
  Arg.(value & opt (some string) None
       & info [ "cache" ] ~docv:"DIR"
           ~doc:"Persistent result store: look up each query before \
                 running it and record the result after.  The directory \
                 is created if missing.  Definitive results are reused \
                 under any budget; $(i,unknown) results only when the \
                 stored run's budget covers the requested one.")

let store_retries_arg =
  Arg.(value & opt int 2
       & info [ "store-retries" ] ~docv:"N"
           ~doc:"Retry budget for store reads/writes: each faulting \
                 operation is retried up to $(docv) times with \
                 exponential backoff before counting as a store error \
                 (default 2; 0 disables retries).  Persistent errors \
                 trip the cache into degraded mode — queries compute \
                 from scratch instead of failing.")

let delta_arg =
  Arg.(value & flag
       & info [ "delta" ]
           ~doc:"Incremental re-verification: remember each query's \
                 previous run (network, result, exploration graph) in \
                 the $(b,--cache) store and answer edits through the \
                 cheapest sound rung — store hit, cone-of-influence \
                 hit, delta re-exploration — falling back to a full \
                 run.  Verdicts and sups are identical to a \
                 from-scratch sequential run.  Requires $(b,--cache); \
                 forces sequential exploration.")

(* open (creating if needed) the --cache store; corrupt entries warn on
   stderr so --json output on stdout stays byte-stable *)
let open_cache ?(retries = 2) cache =
  match cache with
  | None -> None
  | Some dir -> (
    let retry = Fault.Retry.with_attempts (retries + 1) in
    match Store.Disk.open_ ~retry dir with
    | Ok disk -> Some (Analysis.Qcache.make disk)
    | Error msg -> die "--cache: %s" msg)

(* the hit/miss line format is load-bearing (CI greps it); errors and
   the degraded marker only appear when there is something to say *)
let report_cache = function
  | None -> ()
  | Some cache ->
    let errors = Analysis.Qcache.errors cache in
    if errors = 0 && not (Analysis.Qcache.degraded cache) then
      Fmt.epr "cache: %d hits, %d misses@."
        (Analysis.Qcache.hits cache)
        (Analysis.Qcache.misses cache)
    else
      Fmt.epr "cache: %d hits, %d misses, %d error%s%s@."
        (Analysis.Qcache.hits cache)
        (Analysis.Qcache.misses cache)
        errors
        (if errors = 1 then "" else "s")
        (if Analysis.Qcache.degraded cache then " (degraded)" else "")

(* the incremental ladder needs somewhere to persist its sessions *)
let incr_session ~cache ~tag =
  match cache with
  | None -> die "--delta requires --cache (sessions persist beside the store)"
  | Some cache -> Incr.Session.make ~cache ~tag ()

let report_rung (o : Incr.Session.outcome) wall_ms =
  Fmt.epr "incr: %s rung (%d replayed, %d expanded, %.1f ms)@."
    (Incr.Session.rung_name o.Incr.Session.so_rung)
    o.Incr.Session.so_replayed o.Incr.Session.so_expanded wall_ms

(* degraded completion: the run finished and every query was answered,
   but the result store was bypassed for part of the batch.  Documented
   exit code 4; only replaces a would-be-0 success. *)
let exit_degraded cache =
  match cache with
  | Some c when Analysis.Qcache.degraded c -> exit 4
  | Some _ | None -> ()

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let scenarios_arg =
  Arg.(value & opt int 60
       & info [ "scenarios" ] ~docv:"N" ~doc:"Number of simulated scenarios.")

let output_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")

(* --- table1 ------------------------------------------------------------ *)

let table1_cmd =
  let run seed scenarios =
    let t = Gpca.Experiment.table1 ~scenarios ~seed Gpca.Params.default in
    Fmt.pr "%a@." Gpca.Experiment.pp_table1 t
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table I: verified PSM bounds vs simulated measurements.")
    Term.(const run $ seed_arg $ scenarios_arg)

(* --- verify ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_sup = function
  | Mc.Explorer.Sup_unreached -> {|{"kind": "unreached"}|}
  | Mc.Explorer.Sup (v, strict) ->
    Printf.sprintf {|{"kind": "value", "value": %d, "strict": %b}|} v strict
  | Mc.Explorer.Sup_exceeds c ->
    Printf.sprintf {|{"kind": "exceeds", "ceiling": %d}|} c

let json_stats (s : Mc.Explorer.stats) =
  Printf.sprintf {|{"visited": %d, "stored": %d, "frontier": %d}|}
    s.Mc.Explorer.visited s.Mc.Explorer.stored s.Mc.Explorer.frontier

let verify_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model to verify.")
  in
  let trigger =
    Arg.(required & opt (some string) None
         & info [ "trigger" ] ~docv:"CHAN" ~doc:"Triggering synchronisation.")
  in
  let response =
    Arg.(required & opt (some string) None
         & info [ "response" ] ~docv:"CHAN" ~doc:"Responding synchronisation.")
  in
  let bound =
    Arg.(value & opt (some int) None
         & info [ "bound" ] ~docv:"N" ~doc:"Check the response bound P($(docv)).")
  in
  let ceiling =
    Arg.(value & opt int 10_000
         & info [ "ceiling" ] ~docv:"N" ~doc:"Sup-query ceiling.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"On interruption (budget or ^C), write the explorer \
                   snapshot to $(docv); resume later with $(b,--resume).")
  in
  let resume =
    Arg.(value & opt (some file) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Continue an interrupted search from a snapshot written \
                   by $(b,--checkpoint).  Model, trigger, response and \
                   ceiling must match the original run.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the verdict and exploration statistics as JSON.")
  in
  let run file trigger response bound ceiling jobs budget_time budget_states
      budget_mem checkpoint resume json cache delta store_retries =
    let jobs = check_jobs jobs in
    if resume <> None && cache <> None then
      die "--resume and --cache are exclusive (a resumed search must \
           explore, not answer from the store)";
    let cache = open_cache ~retries:store_retries cache in
    let net = load_network file in
    let resume_snap = Option.map load_resume resume in
    (* with --bound the sup ceiling is the bound itself: the check is
       exact and a partial sup can already refute it *)
    let ceiling = match bound with Some b -> b | None -> ceiling in
    let ctl = make_ctl ~time:budget_time ~states:budget_states ~mem:budget_mem in
    if delta then begin
      if jobs > 1 then die "--delta forces sequential exploration; drop --jobs";
      if checkpoint <> None || resume <> None then
        die "--delta is exclusive with --checkpoint/--resume";
      let q =
        match bound with
        | Some b -> Mc.Query.Bounded_response { trigger; response; bound = b }
        | None -> Mc.Query.Sup_delay { trigger; response; ceiling }
      in
      let sess = incr_session ~cache ~tag:file in
      let t0 = Unix.gettimeofday () in
      let o =
        try Incr.Session.run ~ctl sess net q
        with Not_found -> die "unknown channel %S or %S" trigger response
      in
      report_rung o (1000. *. (Unix.gettimeofday () -. t0));
      report_cache cache;
      let outcome = o.Incr.Session.so_result.Mc.Query.res_outcome in
      let st = o.Incr.Session.so_result.Mc.Query.res_stats in
      if json then begin
        let verdict_str, reason =
          match outcome with
          | Mc.Query.Holds | Mc.Query.Sup _ -> ("proved", None)
          | Mc.Query.Fails _ -> ("refuted", None)
          | Mc.Query.Unknown (r, _) ->
            ("unknown", Some (Mc.Runctl.reason_tag r))
        in
        Fmt.pr
          {|{"verdict": "%s", "reason": %s, "bound": %s, "sup": %s, "stats": %s, "rung": "%s"}@.|}
          verdict_str
          (match reason with
           | Some tag -> Printf.sprintf "%S" tag
           | None -> "null")
          (match bound with Some b -> string_of_int b | None -> "null")
          (match outcome with
           | Mc.Query.Sup s | Mc.Query.Unknown (_, Some s) -> json_sup s
           | _ -> "null")
          (json_stats st)
          (Incr.Session.rung_name o.Incr.Session.so_rung)
      end
      else begin
        (match bound with
         | Some b ->
           Fmt.pr "P(%d) %s -> %s: %s@." b trigger response
             (match outcome with
              | Mc.Query.Holds -> "SATISFIED"
              | Mc.Query.Fails _ -> "VIOLATED"
              | Mc.Query.Unknown (r, _) ->
                Fmt.str "UNKNOWN (%a)" Mc.Runctl.pp_reason r
              | Mc.Query.Sup _ -> "SATISFIED")
         | None -> Fmt.pr "%a@." Mc.Query.pp_outcome outcome);
        Fmt.pr "states: %d visited, %d stored, %d frontier@."
          st.Mc.Explorer.visited st.Mc.Explorer.stored st.Mc.Explorer.frontier
      end;
      match outcome with
      | Mc.Query.Fails _ -> exit 1
      | Mc.Query.Unknown _ -> exit 2
      | Mc.Query.Holds | Mc.Query.Sup _ -> exit_degraded cache; exit 0
    end;
    let r =
      try
        match cache with
        | Some _ ->
          (* run_all with a single spec is exactly max_delay behind the
             lookup-before-run / insert-after protocol *)
          let spec =
            { Analysis.Queries.qs_name = "verify";
              qs_net = (fun () -> net);
              qs_trigger = trigger;
              qs_response = response;
              qs_ceiling = ceiling }
          in
          (match
             Analysis.Queries.run_all ~jobs:1 ~search_jobs:jobs ~ctl ?cache
               [ spec ]
           with
           | [ (_, r) ] -> r
           | _ -> assert false)
        | None ->
          Psv.max_delay ~jobs ~ctl ?resume:resume_snap net ~trigger ~response
            ~ceiling
      with
      | Invalid_argument msg -> die "%s" msg
      | Not_found -> die "unknown channel %S or %S" trigger response
    in
    report_cache cache;
    let written =
      match checkpoint, r.Analysis.Queries.dr_snapshot with
      | Some path, Some snap ->
        (try Mc.Explorer.save_snapshot path snap; Some path
         with Sys_error msg -> die "cannot write checkpoint: %s" msg)
      | (Some _ | None), _ -> None
    in
    let verdict =
      match bound with
      | Some b -> Analysis.Queries.verdict_of_delay r ~bound:b
      | None -> (
        (* sup query: "proved" here just means the sup is exact *)
        match r.Analysis.Queries.dr_interrupt with
        | Some reason -> Mc.Explorer.Unknown reason
        | None -> Mc.Explorer.Proved)
    in
    if json then begin
      let verdict_str, reason =
        match verdict with
        | Mc.Explorer.Proved -> ("proved", None)
        | Mc.Explorer.Refuted _ -> ("refuted", None)
        | Mc.Explorer.Unknown reason ->
          ("unknown", Some (Mc.Runctl.reason_tag reason))
      in
      Fmt.pr
        {|{"verdict": "%s", "reason": %s, "bound": %s, "sup": %s, "stats": %s, "checkpoint": %s}@.|}
        verdict_str
        (match reason with
         | Some tag -> Printf.sprintf "%S" tag
         | None -> "null")
        (match bound with Some b -> string_of_int b | None -> "null")
        (json_sup r.Analysis.Queries.dr_sup)
        (json_stats r.Analysis.Queries.dr_stats)
        (match written with
         | Some p -> Printf.sprintf "\"%s\"" (json_escape p)
         | None -> "null")
    end
    else begin
      (match bound with
       | Some b ->
         Fmt.pr "P(%d) %s -> %s: %s@." b trigger response
           (match verdict with
            | Mc.Explorer.Proved -> "SATISFIED"
            | Mc.Explorer.Refuted _ -> "VIOLATED"
            | Mc.Explorer.Unknown reason ->
              Fmt.str "UNKNOWN (%a)" Mc.Runctl.pp_reason reason)
       | None -> Fmt.pr "%a@." Analysis.Queries.pp_delay_result r);
      let st = r.Analysis.Queries.dr_stats in
      Fmt.pr "states: %d visited, %d stored, %d frontier@."
        st.Mc.Explorer.visited st.Mc.Explorer.stored st.Mc.Explorer.frontier;
      match written with
      | Some p -> Fmt.pr "checkpoint written to %s@." p
      | None -> ()
    end;
    match verdict with
    | Mc.Explorer.Proved -> ()
    | Mc.Explorer.Refuted _ -> exit 1
    | Mc.Explorer.Unknown _ -> exit 2
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a bounded-response requirement, or compute the maximum \
             delay.  Exit codes: 0 proved, 1 refuted, 2 unknown \
             (interrupted by a budget or ^C), 3 usage or parse error.")
    Term.(const run $ file $ trigger $ response $ bound $ ceiling $ jobs_arg
          $ budget_time_arg $ budget_states_arg $ budget_mem_arg
          $ checkpoint $ resume $ json $ cache_arg $ delta_arg
          $ store_retries_arg)

(* --- query ---------------------------------------------------------------- *)

let query_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model to query.")
  in
  let query =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"QUERY"
             ~doc:"E<> PRED | A[] PRED | sup: CHAN -> CHAN [ceiling N] | \
                   bounded: CHAN -> CHAN within N")
  in
  let run file query jobs budget_time budget_states budget_mem cache delta
      store_retries =
    let jobs = check_jobs jobs in
    if delta && jobs > 1 then
      die "--delta forces sequential exploration; drop --jobs";
    let cache = open_cache ~retries:store_retries cache in
    let net = load_network file in
    match Mc.Query.parse query with
    | Error msg -> die "query: %s" msg
    | Ok q ->
      let ctl =
        make_ctl ~time:budget_time ~states:budget_states ~mem:budget_mem
      in
      let result =
        try
          if delta then begin
            let sess = incr_session ~cache ~tag:file in
            let t0 = Unix.gettimeofday () in
            let o = Incr.Session.run ~ctl sess net q in
            report_rung o (1000. *. (Unix.gettimeofday () -. t0));
            o.Incr.Session.so_result
          end
          else
            match cache with
            | Some cache -> Analysis.Qcache.eval cache ~jobs ~ctl net q
            | None -> Mc.Query.eval ~jobs ~ctl net q
        with Not_found ->
          die "query names an unknown process, location or variable"
      in
      report_cache cache;
      let outcome = result.Mc.Query.res_outcome in
      Fmt.pr "%a@." Mc.Query.pp_outcome outcome;
      (match outcome with
       | Mc.Query.Fails (Some trace) ->
         Fmt.pr "@[<v 2>counterexample:@,%a@]@."
           Fmt.(list ~sep:cut string)
           trace
       | Mc.Query.Fails None | Mc.Query.Holds | Mc.Query.Sup _
       | Mc.Query.Unknown _ -> ());
      (match outcome with
       | Mc.Query.Fails _ -> exit 1
       | Mc.Query.Unknown _ -> exit 2
       | Mc.Query.Holds | Mc.Query.Sup _ -> ())
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Evaluate an UPPAAL-style query on a .xta model.  Exit codes: \
             0 holds, 1 fails, 2 unknown, 3 usage or parse error.")
    Term.(const run $ file $ query $ jobs_arg $ budget_time_arg
          $ budget_states_arg $ budget_mem_arg $ cache_arg $ delta_arg
          $ store_retries_arg)

(* --- check (batch queries) -------------------------------------------------- *)

let check_cmd =
  let model =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model to check.")
  in
  let queries =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"QUERIES.q"
             ~doc:"Query file: one query per line; blank lines and lines \
                   starting with # are skipped.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one JSON document with every outcome instead of \
                   the table.  The output depends only on the outcomes \
                   (no wall times), so a warm $(b,--cache) run reproduces \
                   a cold run byte for byte.")
  in
  let run model queries jobs budget_time budget_states budget_mem cache json
      delta store_retries =
    let jobs = check_jobs jobs in
    if delta && jobs > 1 then
      die "--delta forces sequential exploration; drop --jobs";
    let cache = open_cache ~retries:store_retries cache in
    let sess = if delta then Some (incr_session ~cache ~tag:model) else None in
    let net = load_network model in
    let lines = String.split_on_char '\n' (read_file queries) in
    let numbered =
      List.filteri (fun _ (_, line) -> line <> "" && line.[0] <> '#')
        (List.mapi (fun lineno line -> (lineno + 1, String.trim line)) lines)
    in
    let eval_one ~ctl q =
      match sess with
      | Some sess -> (Incr.Session.run ~ctl sess net q).Incr.Session.so_result
      | None -> (
        match cache with
        | Some c -> Analysis.Qcache.eval c ~ctl net q
        | None -> Mc.Query.eval ~ctl net q)
    in
    let report (lineno, line, res) =
      match res with
      | Error msg -> Fmt.pr "%3d  ERROR  %s@.     %s@." lineno line msg
      | Ok (result : Mc.Query.result) ->
        let status =
          match result.Mc.Query.res_outcome with
          | Mc.Query.Fails _ -> "FAIL"
          | Mc.Query.Unknown _ -> "?"
          | Mc.Query.Holds | Mc.Query.Sup _ -> "pass"
        in
        Fmt.pr "%3d  %-5s  %s  [%a]@." lineno status line
          Mc.Query.pp_outcome result.Mc.Query.res_outcome
    in
    let results =
      if jobs <= 1 then
        (* sequential: evaluate (and, for the table, print) incrementally *)
        List.map
          (fun (lineno, line) ->
            let res =
              match Mc.Query.parse line with
              | Error msg -> Error msg
              | Ok q -> (
                (* a fresh token per query: each one gets the full budget *)
                let ctl =
                  make_ctl ~time:budget_time ~states:budget_states
                    ~mem:budget_mem
                in
                match eval_one ~ctl q with
                | result -> Ok result
                | exception Not_found ->
                  Error "unknown process, location or variable"
                | exception exn ->
                  Error ("evaluation crashed: " ^ Printexc.to_string exn))
            in
            if not json then report (lineno, line, res);
            (lineno, line, res))
          numbered
      else begin
        (* parallel: parse everything up front, give each query a fresh
           token (full budget each), let one ^C cancel the whole batch,
           then print in file order *)
        let budget =
          make_budget ~time:budget_time ~states:budget_states ~mem:budget_mem
        in
        let parsed =
          List.map
            (fun (lineno, line) ->
              match Mc.Query.parse line with
              | Error msg -> (lineno, line, Error msg)
              | Ok q -> (lineno, line, Ok (q, Mc.Runctl.create ~budget ())))
            numbered
        in
        install_sigint_all
          (List.filter_map
             (function _, _, Ok (_, ctl) -> Some ctl | _, _, Error _ -> None)
             parsed);
        let results =
          Analysis.Queries.pool_map ~jobs
            (fun (lineno, line, item) ->
              match item with
              | Error msg -> (lineno, line, Error msg)
              | Ok (q, ctl) ->
                (* catch everything on the worker: one poisoned query
                   reports an error row instead of killing the batch *)
                (match eval_one ~ctl q with
                 | result -> (lineno, line, Ok result)
                 | exception Not_found ->
                   (lineno, line, Error "unknown process, location or variable")
                 | exception exn ->
                   ( lineno,
                     line,
                     Error ("evaluation crashed: " ^ Printexc.to_string exn) )))
            parsed
        in
        if not json then List.iter report results;
        results
      end
    in
    let failures = ref 0 and unknowns = ref 0 in
    List.iter
      (fun (_, _, res) ->
        match res with
        | Error _ -> incr failures
        | Ok r -> (
          match r.Mc.Query.res_outcome with
          | Mc.Query.Fails _ -> incr failures
          | Mc.Query.Unknown _ -> incr unknowns
          | Mc.Query.Holds | Mc.Query.Sup _ -> ()))
      results;
    let total = List.length numbered in
    if json then begin
      let open Store.Json in
      let query_row (lineno, line, res) =
        let common = [ ("line", Int lineno); ("query", String line) ] in
        match res with
        | Error msg ->
          Obj (common @ [ ("status", String "error"); ("error", String msg) ])
        | Ok (r : Mc.Query.result) ->
          let status =
            match r.Mc.Query.res_outcome with
            | Mc.Query.Fails _ -> "fail"
            | Mc.Query.Unknown _ -> "unknown"
            | Mc.Query.Holds | Mc.Query.Sup _ -> "pass"
          in
          Obj
            (common
            @ [ ("status", String status);
                ( "outcome",
                  Store.Entry.outcome_to_json
                    (Analysis.Qcache.outcome_to_entry r.Mc.Query.res_outcome)
                );
                ( "stats",
                  Store.Entry.stats_to_json
                    (Analysis.Qcache.stats_to_entry r.Mc.Query.res_stats) ) ])
      in
      print_endline
        (to_string
           (Obj
              [ ("model", String model);
                ("queries", List (List.map query_row results));
                ( "summary",
                  Obj
                    [ ("total", Int total);
                      ("failures", Int !failures);
                      ("unknowns", Int !unknowns) ] ) ]))
    end
    else
      Fmt.pr "@.%d quer%s, %d failure%s, %d unknown@." total
        (if total = 1 then "y" else "ies")
        !failures
        (if !failures = 1 then "" else "s")
        !unknowns;
    report_cache cache;
    (match cache with
     | Some c when delta ->
       let cone, dl, fl = Analysis.Qcache.rung_counts c in
       Fmt.epr "incr: %d cone, %d delta, %d full@." cone dl fl
     | Some _ | None -> ());
    if !failures > 0 then exit 1
    else if !unknowns > 0 then exit 2
    else exit_degraded cache
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run a file of queries against a model (verifyta-style), \
             optionally $(b,--jobs) queries at a time on separate domains \
             and $(b,--cache) answering repeats from the persistent store.  \
             Exit codes: 0 all pass, 1 any failure, 2 no failures but some \
             unknown, 3 usage or parse error, 4 all pass but the store was \
             degraded (circuit breaker tripped; some answers computed \
             without the cache).")
    Term.(const run $ model $ queries $ jobs_arg $ budget_time_arg
          $ budget_states_arg $ budget_mem_arg $ cache_arg $ json_arg
          $ delta_arg $ store_retries_arg)

(* --- watch (poll the model file, re-verify incrementally) ---------------- *)

let watch_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model file to watch.")
  in
  let queries =
    Arg.(non_empty & opt_all string []
         & info [ "q"; "query" ] ~docv:"QUERY"
             ~doc:"Query to re-verify after each edit (repeatable).")
  in
  let poll_ms =
    Arg.(value & opt int 200
         & info [ "poll-ms" ] ~docv:"MS"
             ~doc:"Polling interval — the watcher compares mtimes, no \
                   inotify dependency (default 200).")
  in
  let max_edits =
    Arg.(value & opt (some int) None
         & info [ "max-edits" ] ~docv:"N"
             ~doc:"Exit 0 after re-verifying $(docv) edits (the initial \
                   run not counted) — for scripts and CI smoke tests.  \
                   Default: watch until interrupted.")
  in
  let run file qtexts poll_ms max_edits budget_time budget_states budget_mem
      cache store_retries =
    if poll_ms <= 0 then die "--poll-ms must be positive";
    let cache = open_cache ~retries:store_retries cache in
    let queries =
      List.map
        (fun text ->
          match Mc.Query.parse text with
          | Ok q -> q
          | Error msg -> die "query %S: %s" text msg)
        qtexts
    in
    let sess =
      match cache with
      | Some cache -> Incr.Session.make ~cache ~tag:file ()
      | None -> Incr.Session.make ~tag:file ()
    in
    let mtime () =
      match Unix.stat file with
      | st -> Some st.Unix.st_mtime
      | exception Unix.Unix_error _ -> None
    in
    (* tolerant reads: an editor's rename-into-place can race the poll,
       so a transient failure just waits for the next tick *)
    let read () =
      try
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
      with Sys_error _ | End_of_file -> None
    in
    let verify_all ~label =
      match read () with
      | None -> Fmt.pr "[%s] cannot read %s@." label file
      | Some text -> (
        match Xta.Parse.network text with
        | Error msg -> Fmt.pr "[%s] parse error: %s@." label msg
        | Ok net ->
          List.iter
            (fun q ->
              let ctl =
                make_ctl ~time:budget_time ~states:budget_states
                  ~mem:budget_mem
              in
              let t0 = Unix.gettimeofday () in
              match Incr.Session.run ~ctl sess net q with
              | o ->
                Fmt.pr
                  "[%s] %s: %a  (%s rung, %.1f ms, %d replayed, %d expanded)@."
                  label (Mc.Query.to_string q) Mc.Query.pp_outcome
                  o.Incr.Session.so_result.Mc.Query.res_outcome
                  (Incr.Session.rung_name o.Incr.Session.so_rung)
                  (1000. *. (Unix.gettimeofday () -. t0))
                  o.Incr.Session.so_replayed o.Incr.Session.so_expanded
              | exception Not_found ->
                Fmt.pr "[%s] %s: ERROR unknown process, location or variable@."
                  label (Mc.Query.to_string q))
            queries)
    in
    let last = ref (mtime ()) in
    verify_all ~label:"initial";
    let edits = ref 0 in
    let keep_going () =
      match max_edits with Some m -> !edits < m | None -> true
    in
    while keep_going () do
      Unix.sleepf (float_of_int poll_ms /. 1000.);
      match mtime () with
      | Some t when !last <> Some t ->
        last := Some t;
        incr edits;
        verify_all ~label:(Printf.sprintf "edit %d" !edits)
      | Some _ | None -> ()
    done;
    report_cache cache
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Watch a model file and re-verify the given queries after \
             every edit, answering through the incremental ladder — \
             store hit, cone-of-influence hit, delta re-exploration, \
             full run — and printing the rung and wall time per edit.  \
             With $(b,--cache) the session persists across restarts.")
    Term.(const run $ file $ queries $ poll_ms $ max_edits $ budget_time_arg
          $ budget_states_arg $ budget_mem_arg $ cache_arg $ store_retries_arg)

(* --- sweep-schemes (grid sweep with analytic prefilter) ----------------- *)

let json_cost cost =
  "[" ^ String.concat ", " (Array.to_list (Array.map string_of_int cost)) ^ "]"

let json_point (pr : Analysis.Sweep.point_result) =
  Printf.sprintf
    {|{"point": %d, "verdict": "%s", "decision": "%s", "ub": %d, "lb": %d%s, "cost": %s}|}
    pr.Analysis.Sweep.pr_index
    (Analysis.Sweep.verdict_name pr.Analysis.Sweep.pr_verdict)
    (Analysis.Sweep.decision_name pr.Analysis.Sweep.pr_decision)
    pr.Analysis.Sweep.pr_ub pr.Analysis.Sweep.pr_lb
    (match pr.Analysis.Sweep.pr_sup with
     | None -> ""
     | Some s -> Printf.sprintf {|, "sup": %s|} (json_sup s))
    (json_cost pr.Analysis.Sweep.pr_cost)

let json_sweep_outcome ?(extra = "") (o : Analysis.Sweep.outcome) =
  Printf.sprintf
    {|{"points": %d, "pass": %d, "fail": %d, "unknown": %d, "invalid": %d, "analytic_pass": %d, "analytic_fail": %d, "explored": %d, "memo_hits": %d, "mc_runs": %d, "skip_rate": %.4f, "audited": %d, "audit_mismatches": %d, "interrupted": %d, "wall_ms": %.1f, "pareto": [%s]%s}|}
    o.Analysis.Sweep.o_points o.Analysis.Sweep.o_pass o.Analysis.Sweep.o_fail
    o.Analysis.Sweep.o_unknown o.Analysis.Sweep.o_invalid
    o.Analysis.Sweep.o_analytic_pass o.Analysis.Sweep.o_analytic_fail
    o.Analysis.Sweep.o_explored o.Analysis.Sweep.o_memo_hits
    o.Analysis.Sweep.o_mc_runs o.Analysis.Sweep.o_skip_rate
    o.Analysis.Sweep.o_audited
    (List.length o.Analysis.Sweep.o_audit_mismatches)
    o.Analysis.Sweep.o_interrupted o.Analysis.Sweep.o_wall_ms
    (String.concat ", "
       (List.map
          (fun (i, cost) ->
            Printf.sprintf {|{"point": %d, "cost": %s}|} i (json_cost cost))
          o.Analysis.Sweep.o_pareto))
    extra

let pp_sweep_summary (o : Analysis.Sweep.outcome) =
  Fmt.pr "%16s | %8s@." "----------------" "--------";
  Fmt.pr "%16s | %8d@." "points" o.Analysis.Sweep.o_points;
  Fmt.pr "%16s | %8d@." "pass" o.Analysis.Sweep.o_pass;
  Fmt.pr "%16s | %8d@." "fail" o.Analysis.Sweep.o_fail;
  Fmt.pr "%16s | %8d@." "unknown" o.Analysis.Sweep.o_unknown;
  Fmt.pr "%16s | %8d@." "invalid" o.Analysis.Sweep.o_invalid;
  Fmt.pr "%16s | %8d@." "analytic pass" o.Analysis.Sweep.o_analytic_pass;
  Fmt.pr "%16s | %8d@." "analytic fail" o.Analysis.Sweep.o_analytic_fail;
  Fmt.pr "%16s | %8d@." "explored" o.Analysis.Sweep.o_explored;
  Fmt.pr "%16s | %8d@." "memo hits" o.Analysis.Sweep.o_memo_hits;
  Fmt.pr "%16s | %8d@." "mc runs" o.Analysis.Sweep.o_mc_runs;
  Fmt.pr "%16s | %7.1f%%@." "skip rate"
    (100. *. o.Analysis.Sweep.o_skip_rate);
  Fmt.pr "%16s | %8d@." "audited" o.Analysis.Sweep.o_audited;
  Fmt.pr "%16s | %8d@." "audit mismatches"
    (List.length o.Analysis.Sweep.o_audit_mismatches);
  Fmt.pr "%16s | %8d@." "pareto points"
    (List.length o.Analysis.Sweep.o_pareto);
  Fmt.pr "%16s | %8.0f@." "wall ms" o.Analysis.Sweep.o_wall_ms

(* shared by sweep-schemes and the sweep alias: run the engine with a
   streaming sink, report, and fold the outcome into the exit-code
   contract (1 audit mismatch, 2 interrupted, 4 degraded) *)
let run_sweep_engine ~cfg ~points ~build ~cache ~json ~points_out ~extra_json =
  let sink, close_sink =
    match points_out with
    | None -> (None, fun () -> ())
    | Some path -> (
      try
        let oc = open_out path in
        ( Some
            (fun pr ->
              output_string oc (json_point pr);
              output_char oc '\n'),
          fun () -> close_out_noerr oc )
      with Sys_error msg -> die "--points-out: %s" msg)
  in
  let cfg = { cfg with Analysis.Sweep.sw_emit = sink } in
  let outcome = Analysis.Sweep.run cfg ~points ~build in
  close_sink ();
  report_cache cache;
  if json then print_endline (json_sweep_outcome ~extra:(extra_json outcome) outcome)
  else pp_sweep_summary outcome;
  List.iter
    (fun (i, diag) -> Fmt.epr "sweep: audit mismatch at point %d: %s@." i diag)
    outcome.Analysis.Sweep.o_audit_mismatches;
  if outcome.Analysis.Sweep.o_audit_mismatches <> [] then exit 1
  else if outcome.Analysis.Sweep.o_interrupted > 0 then begin
    Fmt.epr "sweep: %d point%s interrupted@."
      outcome.Analysis.Sweep.o_interrupted
      (if outcome.Analysis.Sweep.o_interrupted = 1 then "" else "s");
    exit 2
  end
  else exit_degraded cache

let sweep_schemes_cmd =
  let axis_arg =
    Arg.(value & opt_all string []
         & info [ "axis"; "a" ] ~docv:"NAME=SPEC"
             ~doc:"Add a grid axis (repeatable): $(i,NAME=LO..HI) or \
                   $(i,NAME=LO..HI/STEP) for a range, $(i,NAME=V1,V2,...) \
                   for an explicit list.  Axis names: period, poll, \
                   buffer, policy, comm, mech, signal, in_dmin, in_dmax, \
                   out_dmin, out_dmax, wcet.  The grid is the cartesian \
                   product; unnamed axes stay at the base preset's value.")
  in
  let space_arg =
    Arg.(value & opt string "small"
         & info [ "space" ] ~docv:"BASE"
             ~doc:"Base parameter set the axes perturb: $(i,small) \
                   (~10x-scaled-down constants, the grid preset) or \
                   $(i,table1) (the paper's calibrated constants).")
  in
  let req_arg =
    Arg.(value & opt (some int) None
         & info [ "req" ] ~docv:"BOUND"
             ~doc:"Requirement on the mc-boundary response delay \
                   (default: the base's REQ1).")
  in
  let limit_arg =
    Arg.(value & opt int 500_000
         & info [ "limit" ] ~docv:"N" ~doc:"Per-query state limit.")
  in
  let no_prefilter_arg =
    Arg.(value & flag
         & info [ "no-prefilter" ]
             ~doc:"Disable the analytic prefilter: model check every \
                   valid point (the baseline the prefilter races; dedup \
                   still applies).")
  in
  let audit_arg =
    Arg.(value & opt int 0
         & info [ "audit" ] ~docv:"N"
             ~doc:"Also model check every $(docv)-th analytically decided \
                   point and compare verdicts; any disagreement is \
                   reported and exits 1.  0 disables auditing.")
  in
  let batch_arg =
    Arg.(value & opt int 4096
         & info [ "batch" ] ~docv:"N"
             ~doc:"Points decoded and classified per batch (bounds \
                   memory; the grid itself is never materialised).")
  in
  let points_out_arg =
    Arg.(value & opt (some string) None
         & info [ "points-out" ] ~docv:"FILE"
             ~doc:"Stream one JSON line per point to $(docv) (index \
                   order): verdict, decision, bounds, verified sup, cost.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the summary as one JSON object on stdout instead \
                   of the table.")
  in
  let run axes space req limit no_prefilter audit batch points_out json jobs
      budget_time budget_states budget_mem cache store_retries =
    if axes = [] then
      die "no --axis given (e.g. --axis period=10..80/10 --axis mech=0,1)";
    let base =
      match Gpca.Sweep_space.base_of_string space with
      | Ok b -> b
      | Error msg -> die "--space: %s" msg
    in
    let parsed =
      List.map
        (fun spec ->
          match Scheme.Grid.parse_axis spec with
          | Ok ax -> ax
          | Error msg -> die "bad --axis %S: %s" spec msg)
        axes
    in
    (match Gpca.Sweep_space.validate_axes (List.map fst parsed) with
     | Ok () -> ()
     | Error msg -> die "--axis: %s" msg);
    let grid =
      match Scheme.Grid.make parsed with
      | Ok g -> g
      | Error msg -> die "--axis: %s" msg
    in
    let req =
      match req with
      | Some r -> if r <= 0 then die "--req must be positive" else r
      | None -> Gpca.Sweep_space.default_req base
    in
    if audit < 0 then die "--audit must be non-negative";
    if batch < 1 then die "--batch must be at least 1";
    let jobs = check_jobs jobs in
    let cache = open_cache ~retries:store_retries cache in
    let ctl =
      make_ctl ~time:budget_time ~states:budget_states ~mem:budget_mem
    in
    let points = Scheme.Grid.cardinality grid in
    Fmt.epr "sweep: %d points (%s), req %d, prefilter %s@." points
      (String.concat " x "
         (List.map
            (fun (name, vs) -> Printf.sprintf "%s:%d" name (List.length vs))
            (Scheme.Grid.axes grid)))
      req
      (if no_prefilter then "off" else "on");
    let cfg =
      { Analysis.Sweep.default_config with
        Analysis.Sweep.sw_prefilter = not no_prefilter;
        sw_jobs = jobs;
        sw_limit = Some limit;
        sw_ctl = Some ctl;
        sw_cache = cache;
        sw_batch = batch;
        sw_audit = audit }
    in
    run_sweep_engine ~cfg ~points
      ~build:(Gpca.Sweep_space.build ~base ~req grid)
      ~cache ~json ~points_out
      ~extra_json:(fun _ ->
        Printf.sprintf {|, "req": %d, "base": "%s"|} req
          (Gpca.Sweep_space.base_name base))
  in
  Cmd.v
    (Cmd.info "sweep-schemes"
       ~doc:"Sweep a grid of GPCA implementation schemes — buffer sizes, \
             periods, polling intervals, device delays, signal and \
             read-policy choices — racing the Lemma-1/2 analytic bounds \
             against the zone explorer on every point: an analytic upper \
             bound under the requirement passes with zero model checking, \
             an analytic lower bound above it fails likewise, and only \
             the undecided band is explored ($(b,--jobs) at a time, \
             deduplicated on the point's requirement cone so collapsed \
             axes share one exploration).  Streams per-point JSON with \
             $(b,--points-out), prints a summary table (or $(b,--json)) \
             with the Pareto frontier of passing platform costs.  Exit \
             codes: 0 complete, 1 an $(b,--audit) probe contradicted an \
             analytic verdict, 2 some points interrupted, 3 usage error, \
             4 complete but the store was degraded.")
    Term.(const run $ axis_arg $ space_arg $ req_arg $ limit_arg
          $ no_prefilter_arg $ audit_arg $ batch_arg $ points_out_arg
          $ json_arg $ jobs_arg $ budget_time_arg $ budget_states_arg
          $ budget_mem_arg $ cache_arg $ store_retries_arg)

(* --- sweep (period-sweep alias over the same engine) -------------------- *)

let sweep_cmd =
  let periods =
    Arg.(value & opt string "50,100,200"
         & info [ "periods" ] ~docv:"LIST"
             ~doc:"Comma-separated invocation periods to sweep.")
  in
  let limit =
    Arg.(value & opt int 500_000
         & info [ "limit" ] ~docv:"N" ~doc:"Per-query state limit.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the summary as JSON on stdout.")
  in
  let run periods limit json jobs budget_time budget_states budget_mem cache
      store_retries =
    let jobs = check_jobs jobs in
    let cache = open_cache ~retries:store_retries cache in
    let periods =
      List.map
        (fun s ->
          match int_of_string_opt (String.trim s) with
          | Some p when p > 0 -> p
          | Some _ | None -> die "bad --periods entry %S" s)
        (String.split_on_char ',' periods)
    in
    let periods = Array.of_list periods in
    let base = Gpca.Sweep_space.Table1 in
    let req = Gpca.Sweep_space.default_req base in
    (* thin alias over the sweep-schemes engine: one point per period,
       execution window tied to the period as the original sweep did *)
    let build i =
      let period = periods.(i) in
      Gpca.Sweep_space.spec_of_assignment ~base ~req
        [ ("period", period); ("wcet", period) ]
    in
    let ctl =
      make_ctl ~time:budget_time ~states:budget_states ~mem:budget_mem
    in
    let results = ref [] in
    let cfg =
      { Analysis.Sweep.default_config with
        Analysis.Sweep.sw_jobs = jobs;
        sw_limit = Some limit;
        sw_ctl = Some ctl;
        sw_cache = cache;
        sw_emit = Some (fun pr -> results := pr :: !results) }
    in
    let outcome =
      Analysis.Sweep.run cfg ~points:(Array.length periods) ~build
    in
    report_cache cache;
    if json then
      print_endline
        (json_sweep_outcome
           ~extra:(Printf.sprintf {|, "req": %d|} req)
           outcome)
    else begin
      Fmt.pr "%8s | %8s | %8s | %8s | %13s@." "period" "req" "ub" "verdict"
        "verified";
      List.iter
        (fun (pr : Analysis.Sweep.point_result) ->
          Fmt.pr "%8d | %8d | %8d | %8s | %13s@."
            periods.(pr.Analysis.Sweep.pr_index)
            req pr.Analysis.Sweep.pr_ub
            (Analysis.Sweep.verdict_name pr.Analysis.Sweep.pr_verdict)
            (match pr.Analysis.Sweep.pr_sup with
             | Some s -> Fmt.str "%a" Mc.Explorer.pp_sup_result s
             | None ->
               Analysis.Sweep.decision_name pr.Analysis.Sweep.pr_decision))
        (List.rev !results)
    end;
    if outcome.Analysis.Sweep.o_interrupted > 0 then begin
      Fmt.epr "sweep: %d point%s interrupted@."
        outcome.Analysis.Sweep.o_interrupted
        (if outcome.Analysis.Sweep.o_interrupted = 1 then "" else "s");
      exit 2
    end
    else exit_degraded cache
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep GPCA invocation periods against REQ1 — a thin front \
             end to $(b,sweep-schemes) over the period axis (execution \
             window tied to the period): each period is decided \
             analytically when the bounds suffice and model checked \
             otherwise, $(b,--jobs) at a time.  Exit codes: 0 complete, \
             2 some points interrupted, 3 usage error, 4 degraded store.")
    Term.(const run $ periods $ limit $ json_arg $ jobs_arg $ budget_time_arg
          $ budget_states_arg $ budget_mem_arg $ cache_arg $ store_retries_arg)

(* --- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MODEL.xta" ~doc:"Model to search.")
  in
  let target =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"PRED"
             ~doc:"Target predicate, e.g. 'Pump.Infusing' or 'iovf_BolusReq == 1'.")
  in
  let run file target =
    let net = load_network file in
    match Mc.Query.parse ("E<> " ^ target) with
    | Error msg -> die "predicate: %s" msg
    | Ok (Mc.Query.Exists_eventually p) ->
      let t = Mc.Explorer.make net in
      let pred =
        try Mc.Query.compile_pred t p
        with Not_found ->
          die "predicate names an unknown process, location or variable"
      in
      (match Mc.Explorer.timed_trace t pred with
       | Some steps ->
         List.iter (Fmt.pr "%a@." Mc.Explorer.pp_timed_step) steps
       | None ->
         Fmt.pr "unreachable@.";
         exit 1)
    | Ok _ -> assert false
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a timed witness trace reaching a state predicate.")
    Term.(const run $ file $ target)

(* --- transform ---------------------------------------------------------- *)

let transform_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"PIM.xta" ~doc:"Platform-independent model.")
  in
  let software =
    Arg.(required & opt (some string) None
         & info [ "software" ] ~docv:"NAME" ~doc:"The software automaton (M).")
  in
  let environment =
    Arg.(required & opt (some string) None
         & info [ "environment" ] ~docv:"NAME" ~doc:"The environment automaton (ENV).")
  in
  let inputs =
    Arg.(value & opt_all string []
         & info [ "input" ] ~docv:"SPEC"
             ~doc:"Input device spec: CHAN:interrupt:DMIN:DMAX or \
                   CHAN:polling:INTERVAL:DMIN:DMAX.  Repeatable.")
  in
  let outputs =
    Arg.(value & opt_all string []
         & info [ "output-dev" ] ~docv:"SPEC"
             ~doc:"Output device spec: CHAN:DMIN:DMAX.  Repeatable.")
  in
  let period =
    Arg.(value & opt (some int) None
         & info [ "period" ] ~docv:"N" ~doc:"Periodic invocation period.")
  in
  let aperiodic =
    Arg.(value & opt (some int) None
         & info [ "aperiodic" ] ~docv:"GAP" ~doc:"Aperiodic invocation with minimum gap.")
  in
  let buffer =
    Arg.(value & opt int 5 & info [ "buffer" ] ~docv:"N" ~doc:"Buffer capacity.")
  in
  let shared =
    Arg.(value & flag & info [ "shared" ] ~doc:"Shared-variable communication.")
  in
  let read_one =
    Arg.(value & flag & info [ "read-one" ] ~doc:"Read-one policy (default read-all).")
  in
  let wcet =
    Arg.(value & opt string "1:10" & info [ "wcet" ] ~docv:"MIN:MAX" ~doc:"Execution window.")
  in
  let run file software environment inputs outputs period aperiodic buffer
      shared read_one wcet out =
    let net = load_network file in
    let psm =
      try
        let pim = Transform.Pim.make net ~software ~environment in
        let scheme =
          scheme_of_options ~inputs ~outputs ~period ~aperiodic_gap:aperiodic
            ~buffer ~shared ~read_one ~wcet:(parse_wcet wcet)
        in
        Transform.psm_of_pim pim scheme
      with Transform.Pim.Ill_formed msg | Transform.Transform_error msg ->
        die "%s" msg
    in
    write_out out (Xta.Print.to_string psm.Transform.psm_net)
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Transform a PIM into the PSM of an implementation scheme.")
    Term.(const run $ file $ software $ environment $ inputs $ outputs
          $ period $ aperiodic $ buffer $ shared $ read_one $ wcet
          $ output_arg)

(* --- bounds ------------------------------------------------------------- *)

let bounds_cmd =
  let run () =
    let p = Gpca.Params.default in
    let a = Gpca.Experiment.analytic_bounds p in
    Fmt.pr
      "@[<v>Analytic bounds of the GPCA case study (Lemmas 1 and 2):@,\
       Input-Delay  (bolus request -> code read):        %d ms@,\
       Output-Delay (code output -> infusion visible):   %d ms@,\
       Internal     (PIM bound on request -> start):     %d ms@,\
       Relaxed M-C bound Delta'mc:                       %d ms@]@."
      a.Gpca.Experiment.a_input a.Gpca.Experiment.a_output
      a.Gpca.Experiment.a_internal a.Gpca.Experiment.a_mc
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the analytic Lemma-1/2 bounds (GPCA parameters).")
    Term.(const run $ const ())

(* --- simulate ------------------------------------------------------------ *)

(* fault spec syntax: JITTER:DROP:DUP (floats; see Sim.Engine.faults) *)
let parse_faults_spec ~seed spec =
  let float_field ~field s =
    match float_of_string_opt (String.trim s) with
    | Some v -> v
    | None ->
      die "bad --faults %S: field %s is %S, expected a number" spec field s
  in
  match String.split_on_char ':' spec with
  | [ j; dr; du ] -> (
    try
      Sim.Engine.faults ~seed ~jitter:(float_field ~field:"JITTER" j)
        ~drop:(float_field ~field:"DROP" dr)
        ~dup:(float_field ~field:"DUP" du) ()
    with Invalid_argument msg -> die "%s" msg)
  | _ -> die "bad --faults %S (want JITTER:DROP:DUP)" spec

let simulate_cmd =
  let faults_arg =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"JITTER:DROP:DUP"
             ~doc:"Inject platform faults: device delays stretched by up \
                   to JITTER (fraction), each mc-boundary sample dropped \
                   with probability DROP or duplicated with probability \
                   DUP.  Example: 0.5:0.1:0.1.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 7
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Seed of the fault stream (independent of --seed).")
  in
  let run seed scenarios faults_spec fault_seed =
    match faults_spec with
    | None ->
      let m = Gpca.Experiment.measure ~scenarios ~seed Gpca.Params.default in
      Fmt.pr
        "@[<v>Simulated implementation, %d bolus scenarios (seed %d):@,\
         M-C delay:    %a@,Input delay:  %a@,Output delay: %a@,\
         losses: %d, REQ1 violations: %d@]@."
        m.Gpca.Experiment.m_scenarios seed Sim.Measure.pp_stats
        m.Gpca.Experiment.m_mc Sim.Measure.pp_stats m.Gpca.Experiment.m_input
        Sim.Measure.pp_stats m.Gpca.Experiment.m_output
        m.Gpca.Experiment.m_losses m.Gpca.Experiment.m_req1_violations
    | Some spec ->
      (* degraded platform: samples may be lost, so aggregate whatever
         completes instead of demanding one full observation per run *)
      let faults = parse_faults_spec ~seed:fault_seed spec in
      let p = Gpca.Params.default in
      let rng = Sim.Rng.create seed in
      let mc = ref [] and inp = ref [] and outp = ref [] in
      let losses = ref 0 and violations = ref 0 in
      for index = 0 to scenarios - 1 do
        let request_time =
          Sim.Rng.float_range rng 0.0 (float_of_int (10 * p.Gpca.Params.period))
        in
        let config = Gpca.Experiment.scenario_config p ~request_time in
        let log =
          Sim.Engine.run ~seed:(seed + (1000 * (index + 1))) ~faults config
        in
        losses :=
          !losses
          + Sim.Measure.count log (function
              | Sim.Engine.Input_lost _ | Sim.Engine.Output_lost _ -> true
              | _ -> false);
        List.iter
          (fun s ->
            (match Sim.Measure.mc_delay s with
             | Some d ->
               mc := d :: !mc;
               if d > float_of_int Gpca.Params.req1_bound then incr violations
             | None -> ());
            (match Sim.Measure.input_delay s with
             | Some d -> inp := d :: !inp
             | None -> ());
            match Sim.Measure.output_delay s with
            | Some d -> outp := d :: !outp
            | None -> ())
          (Sim.Measure.samples log ~trigger:Gpca.Model.bolus_req
             ~response:Gpca.Model.start_infusion)
      done;
      let line name l =
        match Sim.Measure.stats_of l with
        | Some st -> Fmt.pr "%s%a@." name Sim.Measure.pp_stats st
        | None -> Fmt.pr "%s(no complete samples)@." name
      in
      Fmt.pr
        "Fault-injected implementation (%s), %d bolus scenarios (seed %d):@."
        spec scenarios seed;
      line "M-C delay:    " !mc;
      line "Input delay:  " !inp;
      line "Output delay: " !outp;
      Fmt.pr "losses: %d, REQ1 violations: %d@." !losses !violations
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the simulated GPCA implementation and measure delays, \
             optionally under an injected fault profile.")
    Term.(const run $ seed_arg $ scenarios_arg $ faults_arg $ fault_seed_arg)

(* --- fuzz ---------------------------------------------------------------- *)

let fuzz_cmd =
  let count_arg =
    Arg.(value & opt int 100
         & info [ "count"; "n" ] ~docv:"N"
             ~doc:"Number of instances to generate and cross-check \
                   (default 100).")
  in
  (* deliberately NOT check_jobs-clamped: the parallel answerer is under
     test for determinism, not speed, and must run at the requested
     domain count even on a single-core host *)
  let fuzz_jobs_arg =
    Arg.(value & opt int 2
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Domain count of the parallel answerer (default 2).  \
                   Unlike the other commands this is not clamped to the \
                   host's cores: the point is cross-checking verdict \
                   determinism, not throughput.")
  in
  let shapes_arg =
    Arg.(value & opt string "all"
         & info [ "shapes" ] ~docv:"LIST"
             ~doc:"Comma-separated generator shapes: chain, fan-in, \
                   pipeline, psm-scheme (default all four, round-robin).")
  in
  let fuzz_scenarios_arg =
    Arg.(value & opt int 3
         & info [ "scenarios" ] ~docv:"N"
             ~doc:"Simulated measurement scenarios per psm-scheme \
                   instance (default 3; 0 disables the sim answerer).")
  in
  let sim_faults_arg =
    Arg.(value & opt (some string) None
         & info [ "sim-faults" ] ~docv:"JITTER:DROP:DUP"
             ~doc:"Measure under an injected platform fault profile \
                   (syntax as $(b,psv simulate --faults)).  Faults only \
                   ever stretch delays, so the analytic floor must still \
                   hold; the sup-side comparison is skipped.")
  in
  let sim_fault_seed_arg =
    Arg.(value & opt int 7
         & info [ "sim-fault-seed" ] ~docv:"N"
             ~doc:"Seed of the fault stream (independent of --seed).")
  in
  let shrink_arg =
    Arg.(value & flag
         & info [ "shrink" ]
             ~doc:"On a discrepancy, greedily minimise the instance \
                   (re-running the oracle after each candidate \
                   reduction) and write the reproducer into \
                   $(b,--corpus).  Construction-bound discrepancies \
                   (truth, analytic, bounded, sim) are persisted \
                   unshrunk — the generator's answer key does not \
                   survive surgery on the network.")
  in
  let corpus_arg =
    Arg.(value & opt string "fuzz-corpus"
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Corpus directory for reproducers (default \
                   fuzz-corpus): one subdirectory per discrepant \
                   instance holding model.xta, query.q and meta.json.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Stream one JSON line per instance to stdout and a \
                   final summary object instead of the human table.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Also write the per-instance JSON lines to $(docv).")
  in
  let skew_arg =
    Arg.(value & opt int 0
         & info [ "inject-sup-skew" ] ~docv:"K"
             ~doc:"Test-only fault injection: report every jobs-1 sup as \
                   its true value plus $(docv), so the harness's own \
                   detection and shrinking paths can be demonstrated \
                   end to end.  The injected bug is caught as a jobs \
                   discrepancy.")
  in
  let run seed count jobs shapes scenarios faults_spec fault_seed shrink
      corpus cache json out skew store_retries =
    if count <= 0 then die "--count must be positive";
    if jobs <= 0 then die "--jobs must be at least 1";
    if scenarios < 0 then die "--scenarios must be at least 0";
    let shapes =
      if String.trim shapes = "all" then Diff.Gen.all_shapes
      else
        List.map
          (fun s ->
            match Diff.Gen.shape_of_name (String.trim s) with
            | Some shape -> shape
            | None ->
              die "unknown shape %S (want chain, fan-in, pipeline or \
                   psm-scheme)" s)
          (String.split_on_char ',' shapes)
    in
    if shapes = [] then die "--shapes must name at least one shape";
    let cache = open_cache ~retries:store_retries cache in
    let sim_faults =
      Option.map (parse_faults_spec ~seed:fault_seed) faults_spec
    in
    let cfg =
      { Diff.Oracle.jobs;
        scenarios;
        sim_faults;
        cache;
        delta = true;
        mutation =
          (if skew = 0 then None else Some (Diff.Oracle.Sup_skew skew)) }
    in
    let out_chan = Option.map open_out out in
    let emit doc =
      let line = Store.Json.to_string doc in
      if json then print_endline line;
      Option.iter
        (fun oc ->
          output_string oc line;
          output_string oc "\n")
        out_chan
    in
    let n_shapes = List.length shapes in
    let per_shape = Hashtbl.create 4 in
    let bump shape discs ms =
      let c, d, t =
        Option.value ~default:(0, 0, 0.0) (Hashtbl.find_opt per_shape shape)
      in
      Hashtbl.replace per_shape shape (c + 1, d + discs, t +. ms)
    in
    let discrepant = ref 0 and shrunk = ref 0 in
    let t0 = Unix.gettimeofday () in
    for index = 0 to count - 1 do
      let shape = List.nth shapes (index mod n_shapes) in
      let inst = Diff.Gen.instance ~seed ~index shape in
      let v = Diff.Oracle.run cfg inst in
      let discs = v.Diff.Oracle.v_discrepancies in
      bump shape (List.length discs) v.Diff.Oracle.v_wall_ms;
      if discs <> [] then incr discrepant;
      if not json then
        List.iter
          (fun (d : Diff.Oracle.discrepancy) ->
            Fmt.pr "%s  DISCREPANCY [%s]  %s@." inst.Diff.Gen.id
              (Diff.Oracle.check_name d.Diff.Oracle.d_check)
              d.Diff.Oracle.d_detail)
          discs;
      let entry_dir =
        if discs = [] || not shrink then None
        else begin
          (* shrink on the first construction-independent class; a
             construction-bound discrepancy is persisted as-is *)
          let shrinkable (d : Diff.Oracle.discrepancy) =
            match d.Diff.Oracle.d_check with
            | Diff.Oracle.Jobs | Diff.Oracle.Xta | Diff.Oracle.Store_trip
            | Diff.Oracle.Delta_replay -> true
            | Diff.Oracle.Truth | Diff.Oracle.Analytic | Diff.Oracle.Bounded
            | Diff.Oracle.Sim -> false
          in
          let q = Diff.Gen.query inst in
          let result =
            match List.find_opt shrinkable discs with
            | Some d ->
              Some
                ( d,
                  Diff.Shrink.shrink cfg ~check:d.Diff.Oracle.d_check
                    ~seed:(seed + index) ~q inst.Diff.Gen.net )
            | None ->
              Option.map
                (fun (d : Diff.Oracle.discrepancy) ->
                  ( d,
                    { Diff.Shrink.sh_net = inst.Diff.Gen.net;
                      sh_xta = Xta.Print.to_string inst.Diff.Gen.net;
                      sh_accepted = 0;
                      sh_tested = 0 } ))
                (match discs with d :: _ -> Some d | [] -> None)
          in
          Option.map
            (fun ((d : Diff.Oracle.discrepancy), r) ->
              let open Store.Json in
              let locs, edges = Ta.Model.size r.Diff.Shrink.sh_net in
              let meta =
                Obj
                  [ ("id", String inst.Diff.Gen.id);
                    ("seed", Int seed);
                    ("index", Int index);
                    ("shape", String (Diff.Gen.shape_name shape));
                    ("check", String (Diff.Oracle.check_name
                                        d.Diff.Oracle.d_check));
                    ("detail", String d.Diff.Oracle.d_detail);
                    ("query", String (Mc.Query.to_string q));
                    ("shrink_accepted", Int r.Diff.Shrink.sh_accepted);
                    ("shrink_tested", Int r.Diff.Shrink.sh_tested);
                    ("locations", Int locs);
                    ("edges", Int edges) ]
              in
              incr shrunk;
              Diff.Shrink.write_entry ~dir:corpus ~id:inst.Diff.Gen.id
                ~query_text:(Mc.Query.to_string q) ~meta_json:meta r)
            result
        end
      in
      let open Store.Json in
      emit
        (Obj
           ([ ("id", String inst.Diff.Gen.id);
              ("shape", String (Diff.Gen.shape_name shape));
              ("seed", Int seed);
              ("index", Int index);
              ( "sup",
                match v.Diff.Oracle.v_sup with
                | Some s -> Int s
                | None -> Null );
              ("ms", Float v.Diff.Oracle.v_wall_ms);
              ( "discrepancies",
                List
                  (List.map
                     (fun (d : Diff.Oracle.discrepancy) ->
                       Obj
                         [ ( "check",
                             String
                               (Diff.Oracle.check_name d.Diff.Oracle.d_check)
                           );
                           ("detail", String d.Diff.Oracle.d_detail) ])
                     discs) ) ]
           @
           match entry_dir with
           | Some dir -> [ ("corpus", String dir) ]
           | None -> []))
    done;
    let wall_s = Unix.gettimeofday () -. t0 in
    let per_sec = float_of_int count /. wall_s in
    let shape_rows =
      List.filter_map
        (fun shape ->
          Option.map
            (fun (c, d, t) -> (Diff.Gen.shape_name shape, c, d, t))
            (Hashtbl.find_opt per_shape shape))
        Diff.Gen.all_shapes
    in
    if json then
      emit
        (let open Store.Json in
         Obj
           [ ( "summary",
               Obj
                 [ ("instances", Int count);
                   ("discrepant", Int !discrepant);
                   ("shrunk", Int !shrunk);
                   ("wall_s", Float wall_s);
                   ("per_sec", Float per_sec);
                   ( "shapes",
                     Obj
                       (List.map
                          (fun (name, c, d, _) ->
                            ( name,
                              Obj
                                [ ("instances", Int c);
                                  ("discrepancies", Int d) ] ))
                          shape_rows) ) ] ) ])
    else begin
      Fmt.pr "@.%-12s %10s %14s %10s@." "shape" "instances" "discrepancies"
        "avg ms";
      List.iter
        (fun (name, c, d, t) ->
          Fmt.pr "%-12s %10d %14d %10.1f@." name c d
            (t /. float_of_int (max 1 c)))
        shape_rows;
      Fmt.pr "%d instance%s, %d discrepant, %d shrunk, %.1fs (%.1f/s)@."
        count
        (if count = 1 then "" else "s")
        !discrepant !shrunk wall_s per_sec
    end;
    Option.iter close_out out_chan;
    report_cache cache;
    if !discrepant > 0 then exit 1 else exit_degraded cache
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: generate seeded random timed-automata \
             instances with known-by-construction delay bounds and \
             cross-check every answerer the tool has — sequential \
             explorer vs ground truth, parallel search at $(b,--jobs) \
             domains, bounded verdicts on both sides of the sup, \
             textual round-trip, store round-trip (with $(b,--cache)), \
             incremental delta replay on a seeded edit, and simulated \
             measurement for transformed PSM instances.  Any \
             disagreement is a discrepancy; with $(b,--shrink) it is \
             minimised and written into $(b,--corpus) as a replayable \
             reproducer.  Exit codes: 0 all consistent, 1 any \
             discrepancy, 3 usage error, 4 consistent but the store \
             was degraded.")
    Term.(const run $ seed_arg $ count_arg $ fuzz_jobs_arg $ shapes_arg
          $ fuzz_scenarios_arg $ sim_faults_arg $ sim_fault_seed_arg
          $ shrink_arg $ corpus_arg $ cache_arg $ json_arg $ out_arg
          $ skew_arg $ store_retries_arg)

(* --- codegen ----------------------------------------------------------------- *)

let codegen_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"PIM.xta" ~doc:"Platform-independent model.")
  in
  let software =
    Arg.(required & opt (some string) None
         & info [ "software" ] ~docv:"NAME" ~doc:"The software automaton (M).")
  in
  let environment =
    Arg.(required & opt (some string) None
         & info [ "environment" ] ~docv:"NAME" ~doc:"The environment automaton (ENV).")
  in
  let directory =
    Arg.(value & opt string "."
         & info [ "d"; "directory" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let with_harness =
    Arg.(value & flag
         & info [ "harness" ] ~doc:"Also emit the stdin-driven test harness (main.c).")
  in
  let run file software environment directory with_harness =
    let net = load_network file in
    let pim =
      try Transform.Pim.make net ~software ~environment
      with Transform.Pim.Ill_formed msg -> die "%s" msg
    in
    let prefix = Codegen.prefix pim in
    let write name text =
      let path = Filename.concat directory name in
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Fmt.pr "wrote %s@." path
    in
    write (prefix ^ ".h") (Codegen.emit_header pim);
    write (prefix ^ ".c") (Codegen.emit_source pim);
    if with_harness then write "main.c" (Codegen.emit_harness pim)
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Generate C code for the software automaton (the TIMES step).")
    Term.(const run $ file $ software $ environment $ directory $ with_harness)

(* --- export ------------------------------------------------------------- *)

let export_cmd =
  let psm_flag =
    Arg.(value & flag & info [ "psm" ] ~doc:"Export the transformed PSM instead of the PIM.")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ] ~doc:"Include the empty-syringe alarm path.")
  in
  let uppaal =
    Arg.(value & flag
         & info [ "uppaal" ] ~doc:"Emit UPPAAL XML instead of .xta text.")
  in
  let run psm_flag full uppaal out =
    let p = Gpca.Params.default in
    let variant = if full then Gpca.Model.Full else Gpca.Model.Bolus_only in
    let net =
      if psm_flag then (Gpca.Model.psm ~variant p).Transform.psm_net
      else Gpca.Model.network ~variant p
    in
    let text =
      if uppaal then Xta.Uppaal_xml.to_string net else Xta.Print.to_string net
    in
    write_out out text
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write the GPCA PIM or PSM as .xta text or UPPAAL XML.")
    Term.(const run $ psm_flag $ full $ uppaal $ output_arg)

(* --- cache maintenance --------------------------------------------------- *)

(* maintenance never creates: pointing these at a directory without the
   store marker is an error, not an invitation to scan (or gc!) it *)
let open_store_or_die dir =
  match Store.Disk.open_existing dir with
  | Ok store -> store
  | Error msg -> die "%s" msg

let cache_dir_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"DIR" ~doc:"Result store directory (see --cache).")

let cache_stats_cmd =
  let run dir =
    let store = open_store_or_die dir in
    let s = Store.Disk.stats store in
    (* corrupt bytes in their own column: exactly what gc would reclaim *)
    Fmt.pr "%s: %d entr%s, %d bytes, %d corrupt, %d corrupt bytes@." dir
      s.Store.Disk.st_entries
      (if s.Store.Disk.st_entries = 1 then "y" else "ies")
      s.Store.Disk.st_bytes s.Store.Disk.st_corrupt
      s.Store.Disk.st_corrupt_bytes;
    let sessions = List.length (Store.Session.list store) in
    if sessions > 0 then
      Fmt.pr "%s: %d incremental session%s@." dir sessions
        (if sessions = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Entry count and size, corrupt-file count and size (the \
             bytes $(b,gc) would reclaim), and incremental session count.")
    Term.(const run $ cache_dir_arg)

let cache_gc_cmd =
  let run dir =
    let store = open_store_or_die dir in
    let removed = Store.Disk.gc store + Store.Session.gc store in
    Fmt.pr "%s: removed %d file%s@." dir removed
      (if removed = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Delete corrupt entries, corrupt incremental sessions and \
             stale temp files.  Refuses to run on a directory that is \
             not a recognized store.")
    Term.(const run $ cache_dir_arg)

let cache_fsck_cmd =
  let run dir =
    let store = open_store_or_die dir in
    let r = Store.Disk.fsck store in
    List.iter
      (fun (file, problem) -> Fmt.pr "BAD  %s: %s@." file problem)
      (List.rev r.Store.Disk.fk_bad);
    List.iter
      (fun file -> Fmt.pr "TMP  %s: orphaned temp file (writer dead)@." file)
      r.Store.Disk.fk_tmp;
    (* the incremental sessions (v2 manifests + exploration graphs)
       verify on the same pass: digests recomputed per automaton from
       the reparsed network text *)
    let sr = Store.Session.fsck store in
    List.iter
      (fun (file, problem) -> Fmt.pr "BAD  %s: %s@." file problem)
      sr.Store.Session.sk_bad;
    Fmt.pr "%s: %d entr%s ok, %d bad, %d orphaned temp@." dir r.Store.Disk.fk_ok
      (if r.Store.Disk.fk_ok = 1 then "y" else "ies")
      (List.length r.Store.Disk.fk_bad)
      (List.length r.Store.Disk.fk_tmp);
    Fmt.pr "%s: %d session%s ok (v2 manifests), %d bad, %d graph%s@." dir
      sr.Store.Session.sk_ok
      (if sr.Store.Session.sk_ok = 1 then "" else "s")
      (List.length sr.Store.Session.sk_bad)
      sr.Store.Session.sk_graphs
      (if sr.Store.Session.sk_graphs = 1 then "" else "s");
    if r.Store.Disk.fk_bad <> [] || sr.Store.Session.sk_bad <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify every entry (magic, checksum, length, JSON shape, \
             key/file-name agreement) and every incremental session \
             (framing, key-v2 manifest with per-automaton digests \
             recomputed from the stored network).  Orphaned temp files \
             left by dead writers are reported (run $(b,cache gc) to \
             remove them).  Exit 1 when anything is bad.")
    Term.(const run $ cache_dir_arg)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Inspect and maintain a persistent result store (see --cache).")
    [ cache_stats_cmd; cache_gc_cmd; cache_fsck_cmd ]

(* --- serve (batch query service) ----------------------------------------- *)

(* HOST:PORT, :PORT (any interface), or unix:PATH *)
let parse_listen_addr s =
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Analysis.Netserve.Unix_path (String.sub s 5 (String.length s - 5))
  else
    match String.rindex_opt s ':' with
    | None ->
      die "bad --listen %S: expected HOST:PORT, :PORT or unix:PATH" s
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> Analysis.Netserve.Tcp (host, p)
      | Some _ | None -> die "bad --listen %S: port must be 0..65535" s)

let sockaddr_to_string = function
  | Unix.ADDR_UNIX p -> "unix:" ^ p
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

(* One line-delimited JSON request per line on stdin; a blank line (or
   EOF) flushes the batch.  The loop itself lives in Analysis.Serve —
   here we wire stdin/stdout, the model-file loader, and the signal
   handlers, then map the outcome to the exit-code contract.  With
   --listen the same protocol is served over a socket by
   Analysis.Netserve instead. *)
let serve_cmd =
  let request_timeout_arg =
    Arg.(value & opt (some string) None
         & info [ "request-timeout" ] ~docv:"DUR"
             ~doc:"Per-request wall-clock deadline (e.g. 500ms, 2s).  A \
                   request that overruns is answered as a diagnosed \
                   $(i,unknown)/$(i,time-budget) outcome; the remaining \
                   requests are unaffected.")
  in
  let max_errors_arg =
    Arg.(value & opt (some int) None
         & info [ "max-errors" ] ~docv:"N"
             ~doc:"Trip wire: stop serving (after finishing the current \
                   batch) once more than $(docv) error responses have \
                   been emitted.  Exit code 4.")
  in
  let listen_arg =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Serve the same protocol over a socket instead of \
                   stdin/stdout: $(i,HOST:PORT), $(i,:PORT) (any \
                   interface), or $(i,unix:PATH).  Port 0 binds an \
                   ephemeral port, reported on stderr.  The process runs \
                   until SIGTERM/SIGINT drains it (exit 2).")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Listener admission-queue capacity.  A request arriving \
                   at a full queue is refused immediately with a \
                   $(i,busy) response, never left hanging.")
  in
  let max_conns_arg =
    Arg.(value & opt int 64
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Concurrent connection cap.  Over the cap a client gets \
                   a $(i,busy) response and an orderly close.")
  in
  let max_inflight_arg =
    Arg.(value & opt int 16
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:"Per-connection cap on admitted-but-unanswered requests \
                   (fairness): a client at its cap gets an immediate \
                   diagnosed $(i,busy) response for the excess, so one \
                   connection can never occupy the whole admission queue.")
  in
  let read_deadline_arg =
    Arg.(value & opt string "10s"
         & info [ "read-deadline" ] ~docv:"DUR"
             ~doc:"Longest a partial request line may sit without new \
                   bytes before the connection is dropped with an error \
                   response (slowloris protection).")
  in
  let model_cache_arg =
    Arg.(value & opt int 16
         & info [ "model-cache" ] ~docv:"N"
             ~doc:"Parsed-model LRU capacity.  Bounds memory when a \
                   long-lived server is asked about many distinct model \
                   files.")
  in
  let run jobs cache budget_time budget_states budget_mem request_timeout
      max_errors store_retries listen queue max_conns max_inflight
      read_deadline model_cache =
    let jobs = check_jobs jobs in
    let cache = open_cache ~retries:store_retries cache in
    let budget =
      make_budget ~time:budget_time ~states:budget_states ~mem:budget_mem
    in
    let request_timeout =
      Option.map
        (fun s ->
          match Mc.Runctl.parse_duration s with
          | Ok v -> v
          | Error msg -> die "bad --request-timeout %S: %s" s msg)
        request_timeout
    in
    (match max_errors with
     | Some n when n < 0 -> die "--max-errors must be non-negative"
     | Some _ | None -> ());
    if queue < 1 then die "--queue must be at least 1";
    if max_conns < 1 then die "--max-conns must be at least 1";
    if max_inflight < 1 then die "--max-inflight must be at least 1";
    if model_cache < 1 then die "--model-cache must be at least 1";
    let read_deadline =
      match Mc.Runctl.parse_duration read_deadline with
      | Ok v -> v
      | Error msg -> die "bad --read-deadline %S: %s" read_deadline msg
    in
    (* model files parsed once per path, shared across batches; requests
       only read the parsed network, so the pool may share it.  The LRU
       bound matters for --listen: a persistent server fed distinct
       model paths must not grow without limit. *)
    let models : (string, (Ta.Model.network, string) result) Analysis.Lru.t =
      Analysis.Lru.create ~capacity:model_cache ()
    in
    let load_model path =
      Analysis.Lru.find_or_add models path (fun path ->
          match
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with
          | text -> (
            match Xta.Parse.network text with
            | Ok net -> Ok net
            | Error msg -> Error (path ^ ": " ^ msg))
          | exception Sys_error msg -> Error msg)
    in
    let drain = Analysis.Serve.drain () in
    (* SIGTERM/SIGINT request a graceful drain: stop reading, cancel
       in-flight evaluations, flush what was already read.  A second
       signal falls through to the default handler (terminate). *)
    let install signal =
      try
        ignore
          (Sys.signal signal
             (Sys.Signal_handle
                (fun _ ->
                  Analysis.Serve.request_drain drain;
                  Sys.set_signal signal Sys.Signal_default)))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    install Sys.sigterm;
    install Sys.sigint;
    let cfg =
      { Analysis.Serve.default_config with
        Analysis.Serve.sv_jobs = jobs;
        sv_budget = budget;
        sv_request_timeout = request_timeout;
        sv_max_errors = max_errors }
    in
    match listen with
    | Some addr ->
      let ncfg =
        { Analysis.Netserve.default_config with
          Analysis.Netserve.ns_addr = parse_listen_addr addr;
          ns_serve = cfg;
          ns_queue = queue;
          ns_max_conns = max_conns;
          ns_max_inflight = max_inflight;
          ns_read_deadline_s = read_deadline }
      in
      let on_ready sa =
        Fmt.epr
          "serve: listening on %s (queue %d, max-conns %d, max-inflight %d, \
           jobs %d)@."
          (sockaddr_to_string sa) queue max_conns max_inflight jobs
      in
      (match
         Analysis.Netserve.listen ncfg ?cache ~drain ~on_ready ~load_model ()
       with
      | Error msg -> die "%s" msg
      | Ok outcome ->
        report_cache cache;
        (match outcome.Analysis.Netserve.no_stop with
         | Analysis.Netserve.Error_limit ->
           Fmt.epr
             "serve: stopping after %d error responses (--max-errors)@."
             outcome.Analysis.Netserve.no_errors;
           exit 4
         | Analysis.Netserve.Drained ->
           Fmt.epr
             "serve: drained (%d response%s over %d connection%s, %d shed)@."
             outcome.Analysis.Netserve.no_served
             (if outcome.Analysis.Netserve.no_served = 1 then "" else "s")
             outcome.Analysis.Netserve.no_conns
             (if outcome.Analysis.Netserve.no_conns = 1 then "" else "s")
             outcome.Analysis.Netserve.no_shed;
           exit 2))
    | None ->
      let read_line =
        Analysis.Serve.fd_line_reader
          ~draining:(fun () -> Analysis.Serve.draining drain)
          Unix.stdin
      in
      let write_line s =
        print_string s;
        print_newline ();
        flush stdout
      in
      let outcome =
        Analysis.Serve.run cfg ?cache ~drain ~load_model ~read_line
          ~write_line ()
      in
      report_cache cache;
      (match outcome.Analysis.Serve.sv_stop with
       | Analysis.Serve.Error_limit ->
         Fmt.epr "serve: stopping after %d error responses (--max-errors)@."
           outcome.Analysis.Serve.sv_errors;
         exit 4
       | Analysis.Serve.Drained ->
         Fmt.epr "serve: drained (%d response%s written)@."
           outcome.Analysis.Serve.sv_served
           (if outcome.Analysis.Serve.sv_served = 1 then "" else "s");
         exit 2
       | Analysis.Serve.Eof -> exit_degraded cache)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Answer line-delimited JSON query requests on stdin — \
             $(b,{\"id\": .., \"model\": \"M.xta\", \"query\": \"..\"}) — \
             one JSON response line each, in request order.  A blank line \
             flushes the current batch: with $(b,--cache), stored results \
             answer instantly and only misses are explored, $(b,--jobs) \
             at a time.  Malformed, over-long or non-UTF-8 request lines \
             get JSON error responses; a worker exception is confined to \
             its request (error object carries the backtrace); SIGTERM or \
             SIGINT drains gracefully.  With $(b,--listen) the same \
             protocol is served over TCP or a Unix-domain socket to many \
             concurrent clients with admission control: a full request \
             queue sheds with an immediate $(i,busy) response, and \
             $(b,{\"stats\": true}) probes report live counters, queue \
             gauges and latency percentiles.  Exit codes: 0 complete, 2 \
             drained by a signal, 3 usage error (including a listener \
             that cannot bind), 4 degraded completion ($(b,--max-errors) \
             tripped, or the store circuit breaker opened).")
    Term.(const run $ jobs_arg $ cache_arg $ budget_time_arg
          $ budget_states_arg $ budget_mem_arg $ request_timeout_arg
          $ max_errors_arg $ store_retries_arg $ listen_arg $ queue_arg
          $ max_conns_arg $ max_inflight_arg $ read_deadline_arg
          $ model_cache_arg)

let main =
  Cmd.group
    (Cmd.info "psv" ~version:"1.0.0"
       ~doc:"Platform-specific timing verification in model-based implementation.")
    [ table1_cmd; verify_cmd; query_cmd; check_cmd; watch_cmd; sweep_cmd;
      sweep_schemes_cmd; serve_cmd; cache_cmd; trace_cmd; transform_cmd;
      codegen_cmd; bounds_cmd; simulate_cmd; fuzz_cmd; export_cmd ]

(* fold cmdliner's own error codes (124/125) into the documented
   exit-code contract: anything that is not a clean run is a usage error *)
let () =
  match Cmd.eval main with
  | 0 -> exit 0
  | _ -> exit 3
